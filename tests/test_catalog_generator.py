"""Unit tests for the daily catalog generator (workload of §VI-A)."""

from __future__ import annotations

import pytest

from repro.catalog.generator import CatalogConfig, CatalogGenerator
from repro.catalog.metadata import verify_metadata
from repro.types import DAY, NodeId, noon_of_day

NODES = [NodeId(i) for i in range(30)]


def make_generator(
    files_per_day: int = 20, ttl_days: float = 2.0, seed: int = 0, pieces: int = 1
) -> CatalogGenerator:
    config = CatalogConfig(
        files_per_day=files_per_day, ttl_days=ttl_days, pieces_per_file=pieces
    )
    return CatalogGenerator(config, NODES, seed=seed)


class TestCatalogConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CatalogConfig(files_per_day=0)
        with pytest.raises(ValueError):
            CatalogConfig(ttl_days=0.0)
        with pytest.raises(ValueError):
            CatalogConfig(pieces_per_file=0)

    def test_file_size_yields_requested_pieces(self):
        config = CatalogConfig(pieces_per_file=3)
        assert config.file_size_bytes == 3 * 256 * 1024

    def test_popularity_model_lambda(self):
        config = CatalogConfig(files_per_day=40)
        assert config.popularity_model().lam == pytest.approx(20.0)


class TestDailyBatch:
    def test_batch_sizes(self):
        generator = make_generator(files_per_day=15)
        batch = generator.generate_day(0, noon_of_day(0))
        assert len(batch.descriptors) == 15
        assert len(batch.metadata) == 15

    def test_uris_unique_across_days(self):
        generator = make_generator(files_per_day=5)
        uris = set()
        for day in range(4):
            batch = generator.generate_day(day, noon_of_day(day))
            for descriptor in batch.descriptors:
                assert descriptor.uri not in uris
                uris.add(descriptor.uri)

    def test_metadata_signed_and_verifiable(self):
        generator = make_generator()
        batch = generator.generate_day(0, noon_of_day(0))
        for record in batch.metadata:
            assert verify_metadata(record, generator.registry)

    def test_metadata_mirror_descriptors(self):
        generator = make_generator(pieces=2)
        batch = generator.generate_day(0, noon_of_day(0))
        for descriptor, record in zip(batch.descriptors, batch.metadata):
            assert record.uri == descriptor.uri
            assert record.num_pieces == descriptor.num_pieces == 2
            assert record.popularity == descriptor.popularity
            assert record.created_at == descriptor.created_at

    def test_ttl_applied(self):
        generator = make_generator(ttl_days=2.0)
        noon = noon_of_day(0)
        batch = generator.generate_day(0, noon)
        for descriptor in batch.descriptors:
            assert descriptor.expires_at == pytest.approx(noon + 2 * DAY)

    def test_deterministic_per_seed(self):
        a = make_generator(seed=3).generate_day(0, noon_of_day(0))
        b = make_generator(seed=3).generate_day(0, noon_of_day(0))
        assert [d.uri for d in a.descriptors] == [d.uri for d in b.descriptors]
        assert [q.target_uri for q in a.queries] == [q.target_uri for q in b.queries]

    def test_seed_changes_output(self):
        a = make_generator(seed=1).generate_day(0, noon_of_day(0))
        b = make_generator(seed=2).generate_day(0, noon_of_day(0))
        assert [d.popularity for d in a.descriptors] != [
            d.popularity for d in b.descriptors
        ]


class TestQueries:
    def test_queries_target_fresh_files(self):
        generator = make_generator()
        batch = generator.generate_day(0, noon_of_day(0))
        uris = {d.uri for d in batch.descriptors}
        for query in batch.queries:
            assert query.target_uri in uris

    def test_queries_match_their_target_metadata(self):
        generator = make_generator()
        batch = generator.generate_day(0, noon_of_day(0))
        by_uri = {record.uri: record for record in batch.metadata}
        for query in batch.queries:
            assert query.matches(by_uri[query.target_uri])

    def test_queries_belong_to_known_nodes(self):
        generator = make_generator()
        batch = generator.generate_day(0, noon_of_day(0))
        for query in batch.queries:
            assert query.node in NODES

    def test_query_lifetime_tracks_file(self):
        generator = make_generator(ttl_days=3.0)
        noon = noon_of_day(0)
        batch = generator.generate_day(0, noon)
        for query in batch.queries:
            assert query.created_at == noon
            assert query.expires_at == pytest.approx(noon + 3 * DAY)

    def test_average_query_rate_near_two_per_node_per_day(self):
        # λ = n/2 makes nodes average ≈ 2 queries per day (§VI-A).
        generator = make_generator(files_per_day=40, seed=5)
        total = 0
        days = 12
        for day in range(days):
            total += len(generator.generate_day(day, noon_of_day(day)).queries)
        per_node_per_day = total / len(NODES) / days
        assert per_node_per_day == pytest.approx(2.0, rel=0.25)

    def test_queries_by_node_grouping(self):
        generator = make_generator()
        batch = generator.generate_day(0, noon_of_day(0))
        grouped = batch.queries_by_node
        assert sum(len(v) for v in grouped.values()) == len(batch.queries)
        for node, queries in grouped.items():
            assert all(q.node == node for q in queries)

    def test_rejects_empty_node_population(self):
        with pytest.raises(ValueError):
            CatalogGenerator(CatalogConfig(), [], seed=0)
