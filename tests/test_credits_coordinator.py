"""Unit tests for the credit ledger and clique coordination."""

from __future__ import annotations

import pytest

from repro.core.coordinator import cyclic_order, elect_coordinator, turn_iterator
from repro.core.credits import REQUESTED_METADATA_CREDIT, CreditLedger
from repro.types import NodeId


class TestCreditLedger:
    def test_starts_at_zero(self):
        ledger = CreditLedger(NodeId(0))
        assert ledger.credit_of(NodeId(1)) == 0.0
        assert ledger.total_granted() == 0.0

    def test_requested_reward_is_five(self):
        # §IV-B: "v's credit is increased by 5".
        ledger = CreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(1))
        assert ledger.credit_of(NodeId(1)) == REQUESTED_METADATA_CREDIT == 5.0

    def test_unrequested_reward_is_popularity(self):
        ledger = CreditLedger(NodeId(0))
        ledger.reward_unrequested(NodeId(1), popularity=0.3)
        assert ledger.credit_of(NodeId(1)) == pytest.approx(0.3)

    def test_rewards_accumulate(self):
        ledger = CreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(1))
        ledger.reward_unrequested(NodeId(1), 0.5)
        assert ledger.credit_of(NodeId(1)) == pytest.approx(5.5)

    def test_self_rewards_ignored(self):
        ledger = CreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(0))
        ledger.reward_unrequested(NodeId(0), 0.9)
        assert ledger.total_granted() == 0.0

    def test_popularity_validated(self):
        ledger = CreditLedger(NodeId(0))
        with pytest.raises(ValueError):
            ledger.reward_unrequested(NodeId(1), 1.5)

    def test_weight_of_requesters_sums_credits(self):
        ledger = CreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(1))
        ledger.reward_unrequested(NodeId(2), 0.4)
        weight = ledger.weight_of_requesters([NodeId(1), NodeId(2), NodeId(3)])
        assert weight == pytest.approx(5.4)

    def test_as_mapping_is_snapshot(self):
        ledger = CreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(1))
        snapshot = ledger.as_mapping()
        ledger.reward_requested(NodeId(1))
        assert snapshot[NodeId(1)] == 5.0


class TestCoordinator:
    def test_elects_min_id(self):
        assert elect_coordinator(frozenset({NodeId(5), NodeId(2), NodeId(9)})) == 2

    def test_empty_clique_raises(self):
        with pytest.raises(ValueError):
            elect_coordinator(frozenset())

    def test_cyclic_order_is_permutation(self):
        members = frozenset(NodeId(i) for i in range(6))
        order = cyclic_order(members)
        assert sorted(order) == sorted(members)

    def test_cyclic_order_agreed_upon(self):
        # Every member computes the same order: it only depends on the
        # member set (seed = sum of ids, §V-B).
        members = frozenset(NodeId(i) for i in (3, 7, 11))
        assert cyclic_order(members) == cyclic_order(frozenset(members))

    def test_cyclic_order_differs_between_cliques(self):
        a = cyclic_order(frozenset(NodeId(i) for i in range(8)))
        b = cyclic_order(frozenset(NodeId(i) for i in range(1, 9)))
        assert a != b

    def test_empty_order_raises(self):
        with pytest.raises(ValueError):
            cyclic_order(frozenset())

    def test_turn_iterator_round_robin(self):
        order = [NodeId(1), NodeId(2), NodeId(3)]
        turns = turn_iterator(order)
        seen = [next(turns) for __ in range(7)]
        assert seen == [1, 2, 3, 1, 2, 3, 1]

    def test_turn_iterator_rejects_empty(self):
        with pytest.raises(ValueError):
            next(turn_iterator([]))
