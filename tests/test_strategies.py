"""Tests for adversarial strategies and reputation-hardened credits.

Covers the plan/assignment layer (:mod:`repro.core.strategies`), the
:class:`~repro.core.credits.ReputationCreditLedger` unit semantics, the
engine-level behavior of every strategy on live runs, determinism of
adversarial runs, and the degradation/recovery property the
``figrobust`` panel is built on.
"""

from __future__ import annotations

import pickle
from dataclasses import FrozenInstanceError, replace

import pytest

from repro.core.credits import (
    CREDIT_POLICIES,
    REPUTATION_NEUTRAL,
    CreditLedger,
    ReputationCreditLedger,
    make_ledger,
)
from repro.core.strategies import (
    ADVERSARY_COUNTER_NAMES,
    DEFAULT_MIX,
    HONEST,
    STRATEGIES,
    STRATEGY_NAMES,
    AdversaryPlan,
    AdversaryState,
    parse_mix,
)
from repro.detlint.rules import rules_for_path
from repro.detlint.runner import lint_paths
from repro.detlint.sanitizer import result_fingerprint
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY, NodeId


def small_trace(seed: int = 0):
    return generate_dieselnet_trace(DieselNetConfig(num_buses=10, num_days=3), seed)


def adversarial_config(mix, fraction=0.4, policy="plain", **overrides):
    defaults = dict(
        files_per_day=6,
        num_days=3,
        tit_for_tat=True,
        seed=1,
        adversaries=AdversaryPlan(fraction=fraction, mix=mix, seed=1),
        credit_policy=policy,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


# ---------------------------------------------------------------- mix parsing


class TestParseMix:
    def test_bare_names_get_weight_one(self):
        assert parse_mix("polluter,free_rider") == (
            ("free_rider", 1.0),
            ("polluter", 1.0),
        )

    def test_explicit_weights(self):
        assert parse_mix("polluter=3, exploiter=0.5") == (
            ("exploiter", 0.5),
            ("polluter", 3.0),
        )

    def test_order_insensitive(self):
        assert parse_mix("a_b".replace("a_b", "polluter,exploiter")) == parse_mix(
            "exploiter,polluter"
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            parse_mix("saboteur")

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            parse_mix("polluter,polluter=2")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_mix(" , ")


# ------------------------------------------------------------------ the plan


class TestAdversaryPlan:
    def test_default_is_clean_and_frozen(self):
        plan = AdversaryPlan()
        assert plan.is_clean()
        with pytest.raises(FrozenInstanceError):
            plan.fraction = 0.5

    def test_pickles(self):
        plan = AdversaryPlan(fraction=0.3, mix=(("polluter", 2.0),), seed=9)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            AdversaryPlan(fraction=1.5)
        with pytest.raises(ValueError, match="fraction"):
            AdversaryPlan(fraction=-0.1)

    def test_mix_validation(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            AdversaryPlan(fraction=0.1, mix=(("saboteur", 1.0),))
        with pytest.raises(ValueError, match="positive"):
            AdversaryPlan(fraction=0.1, mix=(("polluter", 0.0),))
        with pytest.raises(ValueError, match="at least one"):
            AdversaryPlan(fraction=0.1, mix=())

    def test_normalized_mix_sums_to_one(self):
        plan = AdversaryPlan(fraction=0.1, mix=(("polluter", 3.0), ("exploiter", 1.0)))
        normalized = plan.normalized_mix()
        assert [name for name, _ in normalized] == sorted(n for n, _ in normalized)
        assert sum(w for _, w in normalized) == pytest.approx(1.0)

    def test_registry_covers_default_mix(self):
        assert set(STRATEGY_NAMES) == set(STRATEGIES)
        assert "honest" in STRATEGIES and STRATEGIES["honest"] is HONEST
        assert all(name in STRATEGIES for name, _ in DEFAULT_MIX)


class TestAdversaryState:
    NODES = tuple(NodeId(i) for i in range(20))

    def test_assignment_deterministic(self):
        plan = AdversaryPlan(fraction=0.4, seed=3)
        a = AdversaryState(plan, self.NODES, run_seed=7)
        b = AdversaryState(plan, self.NODES, run_seed=7)
        assert a.assignments() == b.assignments()
        assert a.polluter_factory_seed == b.polluter_factory_seed

    def test_assignment_depends_on_both_seeds(self):
        plan = AdversaryPlan(fraction=0.4, seed=3)
        base = AdversaryState(plan, self.NODES, run_seed=7).assignments()
        other_run = AdversaryState(plan, self.NODES, run_seed=8).assignments()
        other_plan = AdversaryState(replace(plan, seed=4), self.NODES, 7).assignments()
        assert base != other_run or base != other_plan

    def test_fraction_rounds_to_node_count(self):
        plan = AdversaryPlan(fraction=0.4)
        state = AdversaryState(plan, self.NODES, run_seed=0)
        assert len(state.nodes) == round(0.4 * len(self.NODES))

    def test_unassigned_nodes_are_honest(self):
        state = AdversaryState(AdversaryPlan(fraction=0.2), self.NODES, run_seed=0)
        honest = [n for n in self.NODES if n not in state.nodes]
        assert honest and all(state.strategy_of(n) is HONEST for n in honest)

    def test_census_counts_every_strategy_name(self):
        state = AdversaryState(AdversaryPlan(fraction=0.5), self.NODES, run_seed=1)
        census = state.nodes_by_strategy()
        assert set(census) == {n for n in STRATEGY_NAMES if n != "honest"}
        assert sum(census.values()) == len(state.nodes)

    def test_counters_start_zero_and_count(self):
        state = AdversaryState(AdversaryPlan(fraction=0.5), self.NODES, run_seed=1)
        assert set(state.counters) == set(ADVERSARY_COUNTER_NAMES)
        assert all(v == 0 for v in state.counters.values())
        state.count("fakes_seeded", 3)
        assert state.counters["fakes_seeded"] == 3


# ------------------------------------------------------- reputation ledger


class TestReputationCreditLedger:
    def test_make_ledger_dispatch(self):
        assert type(make_ledger("plain", NodeId(0))) is CreditLedger
        assert type(make_ledger("reputation", NodeId(0))) is ReputationCreditLedger
        with pytest.raises(ValueError, match="unknown credit policy"):
            make_ledger("karma", NodeId(0))
        assert set(CREDIT_POLICIES) == {"plain", "reputation"}

    def test_stranger_is_neutral(self):
        ledger = ReputationCreditLedger(NodeId(0))
        assert ledger.reputation_of(NodeId(1), now=0.0) == REPUTATION_NEUTRAL

    def test_verified_delivery_raises_reputation_and_pays_full_credit(self):
        ledger = ReputationCreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(1), now=10.0)
        assert ledger.reputation_of(NodeId(1), now=10.0) > REPUTATION_NEUTRAL
        assert ledger.credit_of(NodeId(1)) == CreditLedger(NodeId(0)).credit_of(
            NodeId(1)
        ) + 5.0

    def test_penalty_drops_reputation_and_docks_credit(self):
        ledger = ReputationCreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(1), now=0.0)
        credit_before = ledger.credit_of(NodeId(1))
        ledger.penalize(NodeId(1), now=1.0)
        assert ledger.reputation_of(NodeId(1), now=1.0) < REPUTATION_NEUTRAL
        assert ledger.credit_of(NodeId(1)) < credit_before

    def test_reputation_decays_toward_neutral(self):
        ledger = ReputationCreditLedger(NodeId(0))
        ledger.penalize(NodeId(1), now=0.0)
        punished = ledger.reputation_of(NodeId(1), now=0.0)
        later = ledger.reputation_of(NodeId(1), now=5 * DAY)
        assert punished < later < REPUTATION_NEUTRAL

    def test_over_claim_refused_and_penalized(self):
        ledger = ReputationCreditLedger(NodeId(0))
        ledger.reward_unrequested(NodeId(1), popularity=0.3, now=0.0, claimed=1.0)
        assert ledger.credit_of(NodeId(1)) == 0.0  # nothing paid
        assert ledger.reputation_of(NodeId(1), now=0.0) < REPUTATION_NEUTRAL

    def test_truthful_claim_paid(self):
        ledger = ReputationCreditLedger(NodeId(0))
        ledger.reward_unrequested(NodeId(1), popularity=0.3, now=0.0, claimed=0.3)
        assert ledger.credit_of(NodeId(1)) == pytest.approx(0.3)

    def test_plain_ledger_trusts_the_claim(self):
        ledger = CreditLedger(NodeId(0))
        ledger.reward_unrequested(NodeId(1), popularity=0.3, now=0.0, claimed=1.0)
        assert ledger.credit_of(NodeId(1)) == pytest.approx(1.0)

    def test_effective_credit_scaled_by_reputation(self):
        ledger = ReputationCreditLedger(NodeId(0))
        ledger.reward_unrequested(NodeId(1), popularity=1.0, now=0.0)
        raw = ledger.credit_of(NodeId(1))
        assert ledger.effective_credit(NodeId(1), now=0.0) == pytest.approx(
            raw * ledger.reputation_of(NodeId(1), now=0.0)
        )

    def test_requester_weights_discount_low_reputation(self):
        ledger = ReputationCreditLedger(NodeId(0))
        for peer in (NodeId(1), NodeId(2)):
            ledger.reward_requested(peer, now=0.0)
        honest_only = ledger.weight_of_requesters([NodeId(1)], now=0.0)
        ledger.penalize(NodeId(2), now=0.0)
        ledger.penalize(NodeId(2), now=0.0)
        both = ledger.weight_of_requesters([NodeId(1), NodeId(2)], now=0.0)
        plain = CreditLedger(NodeId(0))
        for peer in (NodeId(1), NodeId(2)):
            plain.reward_requested(peer)
        assert both < plain.weight_of_requesters([NodeId(1), NodeId(2)])
        assert both > honest_only  # docked, not erased

    def test_reputations_snapshot_lists_observed_peers_only(self):
        ledger = ReputationCreditLedger(NodeId(0))
        ledger.reward_requested(NodeId(1), now=0.0)
        snapshot = ledger.reputations(now=0.0)
        assert set(snapshot) == {NodeId(1)}


# ---------------------------------------------------------- live-run behavior


class TestStrategiesInLiveRuns:
    def run(self, mix, policy="plain", **overrides):
        config = adversarial_config(mix, policy=policy, **overrides)
        sim = Simulation(small_trace(1), config)
        result = sim.run()
        return sim, result

    def test_clean_plan_emits_no_adversary_counters(self):
        result = Simulation(
            small_trace(1), SimulationConfig(files_per_day=6, num_days=3, seed=1)
        ).run()
        assert not any(k.startswith("adversary.") for k in result.counters)

    def test_clean_plan_seed_does_not_matter(self):
        """A clean plan never instantiates state: its seed is inert."""
        base = adversarial_config((("polluter", 1.0),), fraction=0.0)
        a = Simulation(small_trace(1), base).run()
        b = Simulation(
            small_trace(1), replace(base, adversaries=AdversaryPlan(seed=99))
        ).run()
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_free_rider_skips_turns_and_sends_nothing(self):
        sim, result = self.run((("free_rider", 1.0),))
        assert result.counters["adversary.turns_skipped"] > 0
        for node in sim.adversary_nodes:
            assert sim.states[node].stats.metadata_sent == 0
            assert sim.states[node].stats.pieces_sent == 0

    def test_under_reporter_hides_holdings(self):
        sim, result = self.run((("under_reporter", 1.0),))
        assert result.counters["adversary.holdings_hidden"] > 0
        assert result.counters["adversary.nodes_under_reporter"] == len(
            sim.adversary_nodes
        )

    def test_polluter_seeds_and_transmits_fakes_that_get_rejected(self):
        sim, result = self.run((("polluter", 1.0),))
        assert result.counters["adversary.fakes_seeded"] > 0
        assert result.counters["adversary.fake_metadata_transmissions"] > 0
        assert result.counters["metadata_rejected_auth"] > 0

    def test_exploiter_inflates_rewards(self):
        sim, result = self.run((("exploiter", 1.0),))
        assert result.counters["adversary.rewards_inflated"] > 0

    def test_exploiter_reputation_drops_under_reputation_policy(self):
        sim, __ = self.run((("exploiter", 1.0),), policy="reputation")
        exploiters = sim.adversary_nodes
        honest = sorted(set(sim.states) - exploiters)
        end = sim.config.num_days * DAY
        judged = [
            sim.states[h].credits.reputation_of(x, end)
            for h in honest
            for x in sorted(exploiters)
            if sim.states[h].credits.reputations(end).get(x) is not None
        ]
        assert judged and min(judged) < REPUTATION_NEUTRAL

    def test_node_report_names_strategies(self):
        sim, __ = self.run((("polluter", 1.0),))
        rows = sim.node_report()
        by_strategy = {row["node"]: row["strategy"] for row in rows}
        for node in sim.adversary_nodes:
            assert by_strategy[node] == "polluter"

    def test_honest_metrics_cover_honest_population_only(self):
        sim, result = self.run((("free_rider", 1.0),))
        assert "adversary.honest_file_ratio" in result.extra
        assert result.extra["adversary.honest_queries"] > 0
        assert result.extra["adversary_nodes"] == float(len(sim.adversary_nodes))


class TestAdversarialDeterminism:
    def test_double_run_fingerprint_stable(self):
        config = adversarial_config(DEFAULT_MIX, policy="reputation")
        a = Simulation(small_trace(1), config).run()
        b = Simulation(small_trace(1), config).run()
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_adversary_streams_do_not_perturb_role_picks(self):
        """Activating the plan must not re-deal selfish/access roles."""
        clean = SimulationConfig(
            files_per_day=6, num_days=3, seed=1, internet_access_fraction=0.4
        )
        dirty = replace(
            clean, adversaries=AdversaryPlan(fraction=0.3, mix=(("polluter", 1.0),))
        )
        a = Simulation(small_trace(1), clean)
        b = Simulation(small_trace(1), dirty)
        assert a.access_nodes == b.access_nodes


class TestDegradationAndRecovery:
    """The property the figrobust panel plots, at smoke-test size."""

    MIX = (("exploiter", 1.0), ("polluter", 3.0))

    def honest_ratio(self, fraction, policy):
        from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace

        config = replace(
            dieselnet_base_config(seed=1),
            tit_for_tat=True,
            encrypted_choking=True,
            adversaries=AdversaryPlan(fraction=fraction, mix=self.MIX, seed=1),
            credit_policy=policy,
        )
        result = Simulation(dieselnet_trace("fast", seed=1), config).run()
        if fraction == 0:
            return result.file_delivery_ratio
        return result.extra["adversary.honest_file_ratio"]

    def test_plain_degrades_and_reputation_recovers(self):
        clean = self.honest_ratio(0.0, "plain")
        plain = self.honest_ratio(0.45, "plain")
        reputation = self.honest_ratio(0.45, "reputation")
        assert plain < clean  # adversaries hurt the paper's scheme
        assert reputation > plain  # the hardened ledger recovers ground


# ------------------------------------------------------------------- linting


class TestDeterminismLintScope:
    def test_strategies_module_is_in_sim_core_scope(self):
        """The determinism rules apply to the new module and it is clean."""
        import repro.core.strategies as module

        assert "DET002" in rules_for_path(module.__file__)
        report = lint_paths([module.__file__])
        assert report.findings == []
