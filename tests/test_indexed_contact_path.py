"""Equivalence and determinism tests for the indexed contact hot path.

The candidate builders in :mod:`repro.core.discovery` and
:mod:`repro.core.download` run on incremental indexes (inverted token
index, piece bitmaps, clique views). Each module keeps its naive
``*_reference`` implementation as the specification; the property
suite here drives both against randomized cliques and requires
identical candidates and identical ranked selection order.

Also covered: the canonical-record fix (the record chosen for a URI
held in different-popularity copies must not depend on member
iteration order), the piece-bitmap primitives, and the metadata
store's inverted token index staying consistent through evictions.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.files import PieceStore, bit_indices, pack_bitmap, piece_payload
from repro.core import discovery, download
from repro.core.cliqueview import CliqueView
from repro.core.node import MetadataStore, NodeState
from repro.types import NodeId, Uri

from conftest import make_metadata, make_node, make_query

VOCAB = ("news", "island", "desert", "finale", "sports", "weather")


def _tokens_of(rng: random.Random) -> str:
    return " ".join(rng.sample(VOCAB, rng.randint(2, 4)))


def _build_clique(registry, seed: int) -> Dict[NodeId, NodeState]:
    """A randomized clique: records, queries, pieces, bounded stores."""
    rng = random.Random(seed)
    n_nodes = rng.randint(2, 5)
    n_files = rng.randint(3, 8)
    files = []
    for i in range(n_files):
        uri = f"dtn://fox/f{i:06d}"
        files.append(
            make_metadata(
                registry,
                uri=uri,
                name=_tokens_of(rng),
                num_pieces=rng.randint(1, 4),
                popularity=rng.choice((0.1, 0.3, 0.5, 0.7, 0.9)),
                ttl=rng.choice((10.0, 1000.0)),  # some expire before t=50
            )
        )
    states: Dict[NodeId, NodeState] = {}
    for i in range(n_nodes):
        state = make_node(
            registry,
            node=i,
            metadata_capacity=rng.choice((None, None, 3)),
        )
        for record in rng.sample(files, rng.randint(0, n_files)):
            state.accept_metadata(record, 0.0)
        for _ in range(rng.randint(0, 2)):
            target = rng.choice(files)
            state.add_own_query(
                make_query(i, target.uri, rng.sample(sorted(target.token_set), 1))
            )
        if rng.random() < 0.5:
            peer = NodeId(100 + i)
            target = rng.choice(files)
            state.store_foreign_queries(
                peer, [make_query(100 + i, target.uri, rng.sample(sorted(target.token_set), 1))]
            )
        for record in rng.sample(files, rng.randint(0, 2)):
            for index in range(record.num_pieces):
                if rng.random() < 0.6:
                    state.pieces.add_unverified(record.uri, index)
        states[NodeId(i)] = state
    return states


class TestBuilderEquivalence:
    """Indexed builders must equal their naive reference on any clique."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000), include_foreign=st.booleans())
    def test_metadata_candidates_match_reference(self, seed, include_foreign):
        from repro.catalog.metadata import PublisherRegistry

        registry = PublisherRegistry(master_seed=42)
        states = _build_clique(registry, seed)
        now = 5.0 if seed % 2 else 50.0  # after some records expired
        indexed = discovery.build_metadata_candidates(states, now, include_foreign)
        reference = discovery.build_metadata_candidates_reference(
            states, now, include_foreign
        )
        assert set(indexed) == set(reference)
        # Ranked order must be identical too, not just the sets.
        assert discovery.select_cooperative(indexed) == discovery.select_cooperative(
            reference
        )
        limit = (seed % 3) + 1
        assert discovery.select_cooperative(indexed, limit=limit) == (
            discovery.select_cooperative(reference)[:limit]
        )
        for sender in states.values():
            for tft in (False, True):
                assert discovery.select_for_sender(
                    indexed, sender, tft
                ) == discovery.select_for_sender(reference, sender, tft)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_piece_candidates_match_reference(self, seed):
        from repro.catalog.metadata import PublisherRegistry

        registry = PublisherRegistry(master_seed=42)
        states = _build_clique(registry, seed)
        now = 5.0 if seed % 2 else 50.0
        indexed = download.build_piece_candidates(states, now)
        reference = download.build_piece_candidates_reference(states, now)
        assert set(indexed) == set(reference)
        assert download.select_cooperative(indexed) == download.select_cooperative(
            reference
        )
        limit = (seed % 3) + 1
        assert download.select_cooperative(indexed, limit=limit) == (
            download.select_cooperative(reference)[:limit]
        )
        for sender in states.values():
            for tft in (False, True):
                assert download.select_for_sender(
                    indexed, sender, tft
                ) == download.select_for_sender(reference, sender, tft)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_shared_view_equals_fresh_builds(self, seed):
        """One CliqueView reused across both phases matches fresh builds."""
        from repro.catalog.metadata import PublisherRegistry

        registry = PublisherRegistry(master_seed=42)
        states = _build_clique(registry, seed)
        view = CliqueView(states, 5.0)
        assert set(
            discovery.build_metadata_candidates(states, 5.0, True, view=view)
        ) == set(discovery.build_metadata_candidates(states, 5.0, True))
        assert set(download.build_piece_candidates(states, 5.0, view=view)) == set(
            download.build_piece_candidates(states, 5.0)
        )


class TestCanonicalRecord:
    """Same-URI copies with different popularity: order must not matter."""

    def _states_with_copies(self, registry, order: List[int]) -> Dict[NodeId, NodeState]:
        low = make_metadata(registry, uri="dtn://fox/f1", popularity=0.2)
        high = make_metadata(registry, uri="dtn://fox/f1", popularity=0.8)
        by_node = {0: low, 1: high, 2: None}
        states: Dict[NodeId, NodeState] = {}
        for i in order:
            state = make_node(registry, node=i)
            if by_node[i] is not None:
                state.accept_metadata(by_node[i], 0.0)
            states[NodeId(i)] = state
        return states

    @pytest.mark.parametrize("order", [[0, 1, 2], [1, 0, 2], [2, 1, 0], [1, 2, 0]])
    def test_metadata_candidate_uses_max_popularity_copy(self, registry, order):
        states = self._states_with_copies(registry, order)
        cands = discovery.build_metadata_candidates(states, 0.0, False)
        assert len(cands) == 1
        assert cands[0].metadata.popularity == 0.8

    @pytest.mark.parametrize("order", [[0, 1, 2], [1, 0, 2], [2, 1, 0], [1, 2, 0]])
    def test_candidates_identical_across_insertion_orders(self, registry, order):
        baseline = self._states_with_copies(registry, [0, 1, 2])
        permuted = self._states_with_copies(registry, order)
        for state in (baseline, permuted):
            state[NodeId(0)].pieces.add_unverified(Uri("dtn://fox/f1"), 0)
        assert set(discovery.build_metadata_candidates(baseline, 0.0, False)) == set(
            discovery.build_metadata_candidates(permuted, 0.0, False)
        )
        assert set(download.build_piece_candidates(baseline, 0.0)) == set(
            download.build_piece_candidates(permuted, 0.0)
        )

    def test_equal_popularity_tie_breaks_to_lowest_member(self, registry):
        a = make_metadata(registry, uri="dtn://fox/f1", popularity=0.5, ttl=100.0)
        b = make_metadata(registry, uri="dtn://fox/f1", popularity=0.5, ttl=200.0)
        forward: Dict[NodeId, NodeState] = {}
        backward: Dict[NodeId, NodeState] = {}
        for states, pairs in ((forward, [(0, a), (1, b)]), (backward, [(1, b), (0, a)])):
            for node, record in pairs:
                state = make_node(registry, node=node)
                state.accept_metadata(record, 0.0)
                states[NodeId(node)] = state
            states[NodeId(5)] = make_node(registry, node=5)
        chosen_f = discovery.build_metadata_candidates(forward, 0.0, False)[0].metadata
        chosen_b = discovery.build_metadata_candidates(backward, 0.0, False)[0].metadata
        assert chosen_f == chosen_b == a  # lowest member id wins the tie


class TestPieceBitmaps:
    @settings(max_examples=60, deadline=None)
    @given(indices=st.sets(st.integers(0, 128)))
    def test_pack_roundtrip(self, indices):
        assert set(bit_indices(pack_bitmap(indices))) == indices

    def test_store_tracks_bitmap_forms(self):
        store = PieceStore()
        uri = Uri("dtn://fox/f1")
        assert store.bitmap_of(uri) == 0
        store.add_unverified(uri, 0)
        store.add_unverified(uri, 2)
        assert store.bitmap_of(uri) == 0b101
        assert store.pieces_of(uri) == {0, 2}
        assert store.count_of(uri) == 2
        assert store.has_piece(uri, 2) and not store.has_piece(uri, 1)
        assert store.missing_bitmap(uri, 3) == 0b010
        assert list(store.missing_pieces(uri, 3)) == [1]
        store.drop_piece(uri, 2)
        assert store.bitmap_of(uri) == 0b001
        store.drop_piece(uri, 0)
        assert uri not in store
        assert store.bitmap_of(uri) == 0

    def test_whole_file_completes(self):
        store = PieceStore()
        uri = Uri("dtn://fox/f1")
        store.add_whole_file(uri, 4)
        assert store.bitmap_of(uri) == 0b1111
        assert store.is_complete(uri, 4)
        assert store.total_pieces() == 4


class TestTokenIndexConsistency:
    def _brute_matching(self, store: MetadataStore, tokens) -> set:
        return {
            record.uri
            for record in store.records()
            if frozenset(tokens) <= record.token_set
        }

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matching_uris_survives_churn(self, seed):
        from repro.catalog.metadata import PublisherRegistry

        registry = PublisherRegistry(master_seed=42)
        rng = random.Random(seed)
        store = MetadataStore(capacity=4, policy=rng.choice(("popularity", "lru", "fifo")))
        records = [
            make_metadata(
                registry,
                uri=f"dtn://fox/f{i:06d}",
                name=_tokens_of(rng),
                popularity=rng.choice((0.1, 0.5, 0.9)),
                ttl=rng.choice((10.0, 1000.0)),
            )
            for i in range(10)
        ]
        for record in rng.sample(records, rng.randint(4, 10)):
            store.add(record, now=0.0)  # bounded: evictions exercise removal
        if rng.random() < 0.5:
            store.drop_expired(50.0)
        for _ in range(5):
            tokens = rng.sample(VOCAB, rng.randint(1, 2))
            assert store.matching_uris(frozenset(tokens)) == self._brute_matching(
                store, tokens
            )
        assert store.matching_uris(frozenset()) == {r.uri for r in store.records()}


class TestWantedOrderDeterminism:
    def test_wanted_set_iterates_in_scan_order(self, registry):
        """wanted_uris inserts in (query, store-scan) order — the layout
        internet_sync used to depend on. The sorted() at the consumer is
        the real guard; this pins the insertion order contract."""
        state = make_node(registry, node=0)
        records = [
            make_metadata(registry, uri=f"dtn://fox/f{i}", name="news island")
            for i in range(6)
        ]
        for record in records:
            state.accept_metadata(record, 0.0)
        state.add_own_query(make_query(0, "dtn://fox/f0", ["island"]))
        wanted = state.wanted_uris(0.0)
        assert wanted == {r.uri for r in records}
        rebuilt = set()
        for record in records:  # store-scan order
            rebuilt.add(record.uri)
        assert list(wanted) == list(frozenset(rebuilt))
