"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import pytest

from repro.catalog.files import piece_checksums
from repro.catalog.metadata import Metadata, PublisherRegistry, sign_metadata
from repro.catalog.query import Query
from repro.core.node import NodeState
from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, NodeId, Uri


@pytest.fixture
def registry() -> PublisherRegistry:
    reg = PublisherRegistry(master_seed=42)
    reg.register("fox")
    reg.register("abc")
    return reg


def make_metadata(
    registry: PublisherRegistry,
    uri: str = "dtn://fox/f000001",
    name: str = "news island finale s01e01",
    publisher: str = "fox",
    num_pieces: int = 1,
    popularity: float = 0.5,
    created_at: float = 0.0,
    ttl: float = 3 * DAY,
    signed: bool = True,
) -> Metadata:
    """Build a (by default signed) metadata record for tests."""
    record = Metadata(
        uri=Uri(uri),
        name=name,
        publisher=publisher,
        description=f"{name} — presented by {publisher.upper()}.",
        checksums=piece_checksums(Uri(uri), num_pieces),
        size_bytes=num_pieces * 256 * 1024,
        created_at=created_at,
        ttl=ttl,
        popularity=popularity,
    )
    if signed:
        registry.register(publisher)
        record = sign_metadata(record, registry)
    return record


def make_query(
    node: int,
    target_uri: str,
    tokens: Iterable[str],
    created_at: float = 0.0,
    expires_at: float = 3 * DAY,
) -> Query:
    return Query(
        node=NodeId(node),
        tokens=frozenset(tokens),
        target_uri=Uri(target_uri),
        created_at=created_at,
        expires_at=expires_at,
    )


def make_node(
    registry: PublisherRegistry,
    node: int = 0,
    internet_access: bool = False,
    selfish: bool = False,
    metadata_capacity: Optional[int] = None,
) -> NodeState:
    return NodeState(
        node=NodeId(node),
        registry=registry,
        internet_access=internet_access,
        selfish=selfish,
        metadata_capacity=metadata_capacity,
    )


def pair_contact(start: float, end: float, u: int, v: int) -> Contact:
    return Contact(start, end, frozenset({NodeId(u), NodeId(v)}))


def clique_contact(start: float, end: float, members: Sequence[int]) -> Contact:
    return Contact(start, end, frozenset(NodeId(m) for m in members))


def tiny_trace() -> ContactTrace:
    """Three nodes, a handful of contacts over two days."""
    contacts = [
        pair_contact(100.0, 200.0, 0, 1),
        pair_contact(300.0, 350.0, 1, 2),
        clique_contact(50_000.0, 51_000.0, [0, 1, 2]),
        pair_contact(DAY + 500.0, DAY + 600.0, 0, 2),
        pair_contact(DAY + 700.0, DAY + 900.0, 0, 1),
    ]
    return ContactTrace(contacts, name="tiny")


def random_symmetric_graph(
    num_nodes: int, edge_prob: float, seed: int
) -> Dict[NodeId, set]:
    """Random undirected graph as an adjacency dict (for clique tests)."""
    rng = random.Random(seed)
    graph: Dict[NodeId, set] = {NodeId(i): set() for i in range(num_nodes)}
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if rng.random() < edge_prob:
                graph[NodeId(i)].add(NodeId(j))
                graph[NodeId(j)].add(NodeId(i))
    return graph
