"""Tests for ASCII plotting, the utility eviction policy and codec fuzzing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.node import MetadataStore
from repro.experiments.asciiplot import render_panel, render_series
from repro.experiments.sweep import SweepPoint, SweepResult
from repro.runtime import codec
from repro.runtime.codec import CodecError, FrameType
from repro.types import DAY, NodeId

from conftest import make_metadata


def tiny_sweep() -> SweepResult:
    points = (
        SweepPoint(x=0.1, ratios={"mbt": (0.5, 0.4), "mbt-qm": (0.2, 0.2)}),
        SweepPoint(x=0.5, ratios={"mbt": (0.7, 0.6), "mbt-qm": (0.2, 0.2)}),
        SweepPoint(x=0.9, ratios={"mbt": (0.9, 0.8), "mbt-qm": (0.2, 0.2)}),
    )
    return SweepResult(
        name="demo", x_label="x", x_values=(0.1, 0.5, 0.9),
        points=points, protocols=("mbt", "mbt-qm"),
    )


class TestAsciiPlot:
    def test_render_series_shape(self):
        chart = render_series(
            [0.0, 1.0], {"a": [0.0, 1.0]}, width=20, height=8
        )
        lines = chart.splitlines()
        assert len(lines) == 8 + 3  # rows + axis + labels + legend
        assert lines[0].startswith(" 1.00 |")
        assert "a" in lines[-1]

    def test_markers_placed_at_extremes(self):
        chart = render_series([0.0, 1.0], {"a": [0.0, 1.0]}, width=20, height=8)
        lines = chart.splitlines()
        assert lines[0].rstrip().endswith("*")  # y=1 at right edge
        assert "*" in lines[7]  # y=0 row holds the left end

    def test_multiple_series_use_distinct_markers(self):
        chart = render_series(
            [0.0, 1.0], {"a": [0.2, 0.2], "b": [0.8, 0.8]}, width=20, height=8
        )
        assert "*" in chart and "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            render_series([], {"a": []})
        with pytest.raises(ValueError):
            render_series([0.0], {"a": [0.1, 0.2]})
        with pytest.raises(ValueError):
            render_series([0.0], {"a": [0.1]}, width=5)

    def test_render_panel_file_and_metadata(self):
        for metric in ("file", "metadata"):
            text = render_panel(tiny_sweep(), metric=metric)
            assert "demo" in text
            assert metric in text

    def test_render_panel_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            render_panel(tiny_sweep(), metric="latency")

    def test_flat_series_renders_one_row(self):
        chart = render_series([0.0, 1.0], {"flat": [0.5, 0.5]}, width=30, height=10)
        chart_rows = [line for line in chart.splitlines() if "|" in line]
        rows_with_marker = [line for line in chart_rows if "*" in line]
        assert len(rows_with_marker) == 1


class TestUtilityEviction:
    def test_prefers_to_keep_fresh_popular_records(self, registry):
        store = MetadataStore(capacity=2, policy="utility")
        # Popular but nearly expired vs modest but fresh.
        dying = make_metadata(
            registry, uri="dtn://fox/dying", popularity=0.9,
            created_at=0.0, ttl=1.1 * DAY,
        )
        fresh = make_metadata(
            registry, uri="dtn://fox/fresh", popularity=0.3,
            created_at=DAY, ttl=3 * DAY,
        )
        third = make_metadata(
            registry, uri="dtn://fox/third", popularity=0.3,
            created_at=DAY, ttl=3 * DAY,
        )
        now = DAY  # 'dying' has 0.1 days left: utility 0.09 day-units
        store.add(dying, now=now)
        store.add(fresh, now=now)
        store.add(third, now=now)
        assert "dtn://fox/dying" not in store
        assert "dtn://fox/fresh" in store and "dtn://fox/third" in store

    def test_zero_remaining_ttl_always_first_victim(self, registry):
        store = MetadataStore(capacity=1, policy="utility")
        expired_soon = make_metadata(
            registry, uri="dtn://fox/old", popularity=1.0, created_at=0.0,
            ttl=DAY,
        )
        newer = make_metadata(
            registry, uri="dtn://fox/new", popularity=0.01, created_at=DAY,
            ttl=2 * DAY,
        )
        store.add(expired_soon, now=DAY - 1)
        store.add(newer, now=DAY + 1)
        assert "dtn://fox/new" in store
        assert "dtn://fox/old" not in store

    def test_runner_accepts_utility_policy(self):
        from repro.sim.runner import SimulationConfig

        config = SimulationConfig(metadata_capacity=10, metadata_policy="utility")
        assert config.metadata_policy == "utility"


class TestCodecFuzz:
    @given(data=st.binary(max_size=300))
    @settings(max_examples=200)
    def test_decode_never_crashes_on_garbage(self, data):
        # Any input either decodes to a frame or raises CodecError —
        # never another exception type.
        try:
            codec.decode_frame(data)
        except CodecError:
            pass

    @given(
        sender=st.integers(min_value=0, max_value=10_000),
        sent_at=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        heard=st.lists(st.integers(min_value=0, max_value=100), max_size=10),
        tokens=st.lists(
            st.lists(st.text(alphabet="abcdef", min_size=1, max_size=8),
                     min_size=1, max_size=3),
            max_size=4,
        ),
    )
    @settings(max_examples=100)
    def test_hello_round_trip_arbitrary_fields(self, sender, sent_at, heard, tokens):
        data = codec.build_hello(
            sender=NodeId(sender),
            sent_at=sent_at,
            heard=tuple(heard),
            query_tokens=tuple(tuple(t) for t in tokens),
            downloading=(),
            held_uris=(),
            have={},
        )
        frame = codec.decode_frame(data)
        assert frame.frame_type is FrameType.HELLO
        assert frame.sender == sender
        assert frame.field("heard") == sorted(heard)

    @given(corrupt_at=st.integers(min_value=0, max_value=200))
    @settings(max_examples=100)
    def test_single_byte_corruption_detected(self, corrupt_at):
        from repro.catalog.metadata import PublisherRegistry

        reg = PublisherRegistry(0)
        record = make_metadata(reg, publisher="fox")
        data = bytearray(codec.build_metadata_frame(NodeId(1), 0.0, record))
        index = corrupt_at % len(data)
        data[index] ^= 0x5A
        try:
            frame = codec.decode_frame(bytes(data))
        except CodecError:
            return  # detected — good
        # The only undetected corruption would be a CRC32 collision,
        # which a single-byte XOR cannot produce; reaching here means
        # the flip landed in... nowhere. It must not happen.
        raise AssertionError(f"corruption at byte {index} undetected: {frame}")