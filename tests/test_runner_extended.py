"""Extended runner coverage: reports, sync cadence, popularity tracking,
multi-piece MBT-QM, and capacity-bounded full simulations."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.mbt import ProtocolVariant
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.nus import NUSConfig, generate_nus_trace


@pytest.fixture(scope="module")
def trace():
    return generate_dieselnet_trace(DieselNetConfig(num_buses=12, num_days=4), seed=5)


class TestNodeReport:
    def test_one_row_per_node(self, trace):
        sim = Simulation(trace, SimulationConfig(seed=5, files_per_day=10))
        sim.run()
        report = sim.node_report()
        assert len(report) == trace.num_nodes
        assert [row["node"] for row in report] == sorted(
            int(n) for n in trace.nodes
        )

    def test_report_fields(self, trace):
        sim = Simulation(trace, SimulationConfig(seed=5, files_per_day=10))
        sim.run()
        row = sim.node_report()[0]
        for key in (
            "internet_access", "selfish", "malicious", "metadata_stored",
            "pieces_stored", "credit_granted", "metadata_received",
            "pieces_sent", "internet_syncs",
        ):
            assert key in row

    def test_access_flags_match_roles(self, trace):
        sim = Simulation(
            trace, SimulationConfig(seed=5, files_per_day=10,
                                    internet_access_fraction=0.5)
        )
        sim.run()
        flagged = {row["node"] for row in sim.node_report() if row["internet_access"]}
        assert flagged == {int(n) for n in sim.access_nodes}

    def test_activity_recorded(self, trace):
        sim = Simulation(trace, SimulationConfig(seed=5, files_per_day=10))
        sim.run()
        report = sim.node_report()
        assert sum(row["metadata_stored"] for row in report) > 0
        assert sum(row["pieces_sent"] for row in report) > 0


class TestSyncCadence:
    def test_more_syncs_help_or_equal(self, trace):
        base = SimulationConfig(seed=5, files_per_day=20)
        daily = Simulation(trace, base).run()
        hourly_ish = Simulation(
            trace, replace(base, internet_syncs_per_day=4)
        ).run()
        assert hourly_ish.file_delivery_ratio >= daily.file_delivery_ratio - 0.02

    def test_sync_counter_scales(self, trace):
        base = SimulationConfig(seed=5, files_per_day=10)
        sim1 = Simulation(trace, base)
        sim1.run()
        sim4 = Simulation(trace, replace(base, internet_syncs_per_day=4))
        sim4.run()
        syncs1 = sum(s.stats.internet_syncs for s in sim1.states.values())
        syncs4 = sum(s.stats.internet_syncs for s in sim4.states.values())
        assert syncs4 > syncs1


class TestPopularityTracking:
    def test_tracked_popularity_runs_and_differs(self, trace):
        base = SimulationConfig(seed=5, files_per_day=20)
        ground_truth = Simulation(trace, base).run()
        tracked = Simulation(trace, replace(base, track_popularity=True)).run()
        assert 0.0 <= tracked.file_delivery_ratio <= 1.0
        # Server-estimated popularities reorder pushes; outcomes differ.
        assert (
            tracked.extra["piece_transmissions"]
            != ground_truth.extra["piece_transmissions"]
            or tracked.file_delivery_ratio != ground_truth.file_delivery_ratio
            or tracked.metadata_delivery_ratio
            != ground_truth.metadata_delivery_ratio
        )


class TestMultiPiece:
    def test_qm_with_multi_piece_files(self, trace):
        config = SimulationConfig(
            seed=5, files_per_day=10, pieces_per_file=3,
            variant=ProtocolVariant.MBT_QM, files_per_contact=5,
        )
        result = Simulation(trace, config).run()
        # Metadata can now lead files (attached metadata arrives with
        # the first piece; completion needs all three).
        assert result.metadata_delivery_ratio >= result.file_delivery_ratio

    def test_partial_files_do_not_count(self, trace):
        few = Simulation(
            trace,
            SimulationConfig(seed=5, files_per_day=10, pieces_per_file=4,
                             files_per_contact=1),
        ).run()
        whole = Simulation(
            trace,
            SimulationConfig(seed=5, files_per_day=10, pieces_per_file=1,
                             files_per_contact=1),
        ).run()
        assert few.file_delivery_ratio <= whole.file_delivery_ratio


class TestBoundedStores:
    def test_metadata_capacity_respected_throughout(self, trace):
        sim = Simulation(
            trace,
            SimulationConfig(seed=5, files_per_day=30, metadata_capacity=10),
        )
        sim.run()
        for state in sim.states.values():
            assert len(state.metadata) <= 10

    def test_piece_capacity_respected_throughout(self, trace):
        sim = Simulation(
            trace,
            SimulationConfig(seed=5, files_per_day=30, piece_capacity=8),
        )
        sim.run()
        for state in sim.states.values():
            if state.internet_access:
                continue  # direct downloads bypass the DTN buffer
            assert state.pieces.total_pieces() <= 8

    def test_utility_policy_end_to_end(self, trace):
        result = Simulation(
            trace,
            SimulationConfig(seed=5, files_per_day=30, metadata_capacity=10,
                             metadata_policy="utility"),
        ).run()
        assert 0.0 <= result.file_delivery_ratio <= 1.0


class TestHorizon:
    def test_num_days_cuts_contacts(self, trace):
        short = Simulation(trace, SimulationConfig(seed=5, files_per_day=10,
                                                   num_days=1)).run()
        full = Simulation(trace, SimulationConfig(seed=5, files_per_day=10)).run()
        assert short.extra["num_days"] == 1.0
        assert short.queries_generated < full.queries_generated

    def test_clique_trace_full_run(self):
        trace = generate_nus_trace(
            NUSConfig(num_students=20, num_courses=4, num_days=3), seed=1
        )
        result = Simulation(
            trace,
            SimulationConfig(seed=1, files_per_day=10,
                             frequent_contact_max_gap_days=1.0),
        ).run()
        assert result.queries_generated > 0


class TestCLIValidate:
    def test_validate_command_passes(self, capsys):
        from repro.cli import main as cli_main

        # The fast validation takes ~30 s; exercised fully by the
        # examples. Here we only check wiring via --help.
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["validate", "--help"])
        assert excinfo.value.code == 0
        assert "--scale" in capsys.readouterr().out