"""Unit tests for the DTN unicast routing substrate."""

from __future__ import annotations

import pytest

from repro.routing.base import Message, RoutingResult, simulate_routing
from repro.routing.epidemic import EpidemicRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_wait import SprayAndWaitRouter
from repro.traces.base import ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY, NodeId

from conftest import pair_contact


def msg(msg_id: int, src: int, dst: int, created: float = 0.0, ttl: float = 10 * DAY):
    return Message(msg_id, NodeId(src), NodeId(dst), created, ttl)


def chain_trace() -> ContactTrace:
    """0 meets 1, then 1 meets 2, then 2 meets 3 (a forwarding chain)."""
    return ContactTrace(
        [
            pair_contact(100.0, 110.0, 0, 1),
            pair_contact(200.0, 210.0, 1, 2),
            pair_contact(300.0, 310.0, 2, 3),
        ]
    )


class TestMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            msg(0, 1, 1)
        with pytest.raises(ValueError):
            Message(0, NodeId(0), NodeId(1), 0.0, 0.0)

    def test_lifetime(self):
        m = msg(0, 0, 1, created=10.0, ttl=10.0)
        assert not m.is_live(9.0)
        assert m.is_live(15.0)
        assert not m.is_live(20.0)


class TestEpidemic:
    def test_delivers_along_chain(self):
        result = simulate_routing(chain_trace(), [msg(0, 0, 3)], EpidemicRouter())
        assert result.delivered == 1
        assert result.delivery_ratio == 1.0
        assert result.delays == (300.0,)

    def test_ttl_prevents_delivery(self):
        result = simulate_routing(
            chain_trace(), [msg(0, 0, 3, ttl=250.0)], EpidemicRouter()
        )
        assert result.delivered == 0

    def test_message_created_after_contact_not_forwarded(self):
        result = simulate_routing(
            chain_trace(), [msg(0, 0, 3, created=150.0)], EpidemicRouter()
        )
        # Node 0 never meets anyone after 150s.
        assert result.delivered == 0

    def test_transmissions_counted(self):
        result = simulate_routing(chain_trace(), [msg(0, 0, 3)], EpidemicRouter())
        assert result.transmissions == 3

    def test_budget_limits_transfers(self):
        messages = [msg(i, 0, 3) for i in range(5)]
        unlimited = simulate_routing(chain_trace(), messages, EpidemicRouter())
        limited = simulate_routing(
            chain_trace(), messages, EpidemicRouter(), transfers_per_contact=1
        )
        assert limited.transmissions < unlimited.transmissions
        assert limited.delivered <= unlimited.delivered

    def test_direct_delivery_prioritized_under_budget(self):
        trace = ContactTrace([pair_contact(10.0, 20.0, 0, 1)])
        messages = [msg(0, 0, 2), msg(1, 0, 1)]  # msg 1 is for node 1
        result = simulate_routing(
            trace, messages, EpidemicRouter(), transfers_per_contact=1
        )
        assert result.delivered == 1

    def test_mean_delay_nan_when_nothing_delivered(self):
        result = simulate_routing(chain_trace(), [msg(0, 3, 0)], EpidemicRouter())
        assert result.delivered == 0
        assert result.mean_delay != result.mean_delay  # NaN

    def test_empty_message_set(self):
        result = simulate_routing(chain_trace(), [], EpidemicRouter())
        assert result.generated == 0
        assert result.delivery_ratio == 0.0


class TestSprayAndWait:
    def test_direct_contact_always_delivers(self):
        trace = ContactTrace([pair_contact(10.0, 20.0, 0, 1)])
        result = simulate_routing(trace, [msg(0, 0, 1)], SprayAndWaitRouter(1))
        assert result.delivered == 1

    def test_single_copy_waits(self):
        # With one copy, node 0 hands nothing to relay 1.
        result = simulate_routing(
            chain_trace(), [msg(0, 0, 3)], SprayAndWaitRouter(initial_copies=1)
        )
        assert result.delivered == 0

    def test_enough_copies_traverse_chain(self):
        result = simulate_routing(
            chain_trace(), [msg(0, 0, 3)], SprayAndWaitRouter(initial_copies=8)
        )
        assert result.delivered == 1

    def test_binary_split_of_tokens(self):
        router = SprayAndWaitRouter(initial_copies=8)
        trace = ContactTrace([pair_contact(10.0, 20.0, 0, 1)])
        simulate_routing(trace, [msg(0, 0, 5)], router)
        assert router.tokens_of(NodeId(0), 0) == 4
        assert router.tokens_of(NodeId(1), 0) == 4

    def test_copies_bounded_by_initial(self):
        router = SprayAndWaitRouter(initial_copies=4)
        trace = generate_dieselnet_trace(DieselNetConfig(num_buses=10, num_days=3), 0)
        message = msg(0, int(trace.nodes[0]), int(trace.nodes[1]))
        simulate_routing(trace, [message], router)
        total = sum(router.tokens_of(node, 0) for node in trace.nodes)
        assert total <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            SprayAndWaitRouter(initial_copies=0)

    def test_fewer_transmissions_than_epidemic(self):
        trace = generate_dieselnet_trace(DieselNetConfig(num_buses=12, num_days=4), 1)
        messages = [
            msg(i, int(trace.nodes[i % 6]), int(trace.nodes[-1 - i % 6]), created=0.0)
            for i in range(10)
        ]
        epidemic = simulate_routing(trace, messages, EpidemicRouter())
        spray = simulate_routing(trace, messages, SprayAndWaitRouter(4))
        assert spray.transmissions < epidemic.transmissions
        assert spray.delivered <= epidemic.delivered


class TestProphet:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            ProphetRouter(p_init=0.0)
        with pytest.raises(ValueError):
            ProphetRouter(beta=2.0)
        with pytest.raises(ValueError):
            ProphetRouter(gamma=0.0)
        with pytest.raises(ValueError):
            ProphetRouter(aging_unit=0.0)

    def test_encounter_raises_predictability(self):
        router = ProphetRouter()
        router.on_encounter(NodeId(0), NodeId(1), now=0.0)
        assert router.predictability(NodeId(0), NodeId(1)) == pytest.approx(0.75)
        router.on_encounter(NodeId(0), NodeId(1), now=1.0)
        assert router.predictability(NodeId(0), NodeId(1)) > 0.75

    def test_aging_decays_predictability(self):
        router = ProphetRouter(gamma=0.9)
        router.on_encounter(NodeId(0), NodeId(1), now=0.0)
        before = router.predictability(NodeId(0), NodeId(1))
        router.on_encounter(NodeId(0), NodeId(2), now=3600.0 * 10)
        assert router.predictability(NodeId(0), NodeId(1)) < before

    def test_transitivity(self):
        router = ProphetRouter()
        router.on_encounter(NodeId(1), NodeId(2), now=0.0)
        # Node 0 meets node 1, which knows node 2.
        router.on_encounter(NodeId(0), NodeId(1), now=1.0)
        assert router.predictability(NodeId(0), NodeId(2)) > 0.0

    def test_forwards_toward_better_carrier(self):
        router = ProphetRouter()
        # Node 1 frequently meets node 3; node 0 never does.
        for t in range(5):
            router.on_encounter(NodeId(1), NodeId(3), now=float(t))
        message = msg(0, 0, 3)
        transfers = router.select_transfers(
            NodeId(0), NodeId(1), {message}, set(), now=10.0
        )
        assert transfers == [message]
        # And not in the other direction.
        back = router.select_transfers(NodeId(1), NodeId(0), {message}, set(), now=10.0)
        assert back == []

    def test_delivers_on_chain_with_history(self):
        # Warm-up meetings teach the gradient, then a message flows.
        warmup = []
        for day in range(3):
            base = day * DAY
            warmup.append(pair_contact(base + 100.0, base + 110.0, 0, 1))
            warmup.append(pair_contact(base + 200.0, base + 210.0, 1, 2))
        trace = ContactTrace(warmup)
        result = simulate_routing(
            trace, [msg(0, 0, 2, created=DAY)], ProphetRouter()
        )
        assert result.delivered == 1


class TestRoutingResult:
    def test_ratio_and_delay(self):
        result = RoutingResult(delivered=2, generated=4, transmissions=9,
                               delays=(10.0, 30.0))
        assert result.delivery_ratio == 0.5
        assert result.mean_delay == 20.0
