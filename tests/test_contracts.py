"""Contract registries + CON rule family: corpus, live tree, registries."""

from __future__ import annotations

import dataclasses
import inspect
import json
from collections import Counter
from pathlib import Path

from repro.contracts import (
    COUNTER_PREFIXES,
    COUNTER_REGISTRY,
    KNOB_REGISTRY,
    NAMESPACE_ROOTS,
    SEAM_REGISTRY,
    METADATA_RECORD_FIELDS,
    MESSAGE_FIELDS,
    allowed_packages,
    check_counter_key,
    excluded_prefixes,
    module_for_path,
    surfaced_keys,
)
from repro.detlint import lint_paths, lint_source
from repro.detlint.findings import format_json
from repro.detlint.runner import main as detlint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
CON_CORPUS = REPO_ROOT / "tests" / "detlint_corpus" / "contracts_project"

CORE_PATH = "src/repro/core/snippet.py"

CON_RULE_IDS = ("CON001", "CON002", "CON003", "CON004", "CON005", "CON006")


def rule_ids(findings):
    return [f.rule for f in findings]


class TestPerFileRules:
    def test_unregistered_literal_fires_only_with_contracts(self):
        source = 'counters["perf.made_up"] = 1\n'
        assert lint_source(source, CORE_PATH) == []
        findings = lint_source(source, CORE_PATH, contracts=True)
        assert rule_ids(findings) == ["CON001"]
        assert "perf.made_up" in findings[0].message

    def test_registered_literal_is_clean(self):
        source = 'counters["faults.crashes"] += 1\n'
        assert lint_source(source, CORE_PATH, contracts=True) == []

    def test_recorder_call_resolves_namespace(self):
        source = "def f(perf):\n    perf.count('made_up')\n"
        findings = lint_source(source, CORE_PATH, contracts=True)
        assert rule_ids(findings) == ["CON001"]
        assert "perf.made_up" in findings[0].message

    def test_open_prefix_admits_minted_suffixes(self):
        source = 'counters["perf.time_us.contact_phase"] = 12\n'
        assert lint_source(source, CORE_PATH, contracts=True) == []

    def test_fstring_head_must_be_registered_prefix(self):
        source = 'k = f"perf.zzz_{name}"\n'
        findings = lint_source(source, CORE_PATH, contracts=True)
        assert rule_ids(findings) == ["CON001"]

    def test_layering_violation(self):
        source = "from repro.exec import run_many\n"
        findings = lint_source(source, CORE_PATH, contracts=True)
        assert rule_ids(findings) == ["CON004"]
        assert "repro.core" in findings[0].message

    def test_function_local_import_is_the_escape_hatch(self):
        source = "def f():\n    from repro.exec import run_many\n    return run_many\n"
        assert lint_source(source, CORE_PATH, contracts=True) == []

    def test_suppression_applies_to_con_rules(self):
        source = 'counters["perf.made_up"] = 1  # detlint: ignore[CON001] why\n'
        assert lint_source(source, CORE_PATH, contracts=True) == []


class TestCorpus:
    def test_every_con_rule_fires(self):
        report = lint_paths([str(CON_CORPUS)], contracts=True)
        counts = Counter(f.rule for f in report.findings)
        for rule in CON_RULE_IDS:
            assert counts[rule] >= 1, rule
        assert set(counts) == set(CON_RULE_IDS)
        assert report.exit_code == 1

    def test_default_run_is_silent(self):
        # The fixtures are DET-clean and CON rules need --contracts.
        report = lint_paths([str(CON_CORPUS)])
        assert report.findings == []
        assert report.exit_code == 0

    def test_fixture_suppression_matched(self):
        # sanitizer.py suppresses the CON001 on its alien prefix literal,
        # leaving only the CON002 drift findings for that file.
        report = lint_paths([str(CON_CORPUS)], contracts=True)
        assert report.suppressions_matched >= 1
        sanitizer = [
            f for f in report.findings if f.path.endswith("detlint/sanitizer.py")
        ]
        assert rule_ids(sanitizer) == ["CON002"] * 3

    def test_json_format_carries_con_findings(self):
        report = lint_paths([str(CON_CORPUS)], contracts=True)
        payload = json.loads(format_json(report.findings))
        assert {f["rule"] for f in payload} == set(CON_RULE_IDS)
        assert all(f["line"] >= 1 and f["fixit"] for f in payload)


class TestLiveTree:
    def test_src_repro_is_contract_clean(self):
        """The acceptance bar: every contract holds on the shipped tree."""
        report = lint_paths([str(SRC_TREE)], contracts=True)
        assert report.findings == [], [str(f) for f in report.findings]

    def test_runner_flag(self, capsys):
        assert detlint_main([str(SRC_TREE), "--contracts"]) == 0
        assert detlint_main([str(CON_CORPUS), "--contracts"]) == 1
        assert "CON0" in capsys.readouterr().out

    def test_cli_lint_contracts(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", str(SRC_TREE), "--contracts"]) == 0
        assert cli_main(["lint", str(CON_CORPUS), "--contracts"]) == 1
        assert "CON0" in capsys.readouterr().out


class TestCounterRegistry:
    def test_surfaced_keys_match_metrics(self):
        from repro.sim.metrics import COUNTER_KEYS

        assert set(COUNTER_KEYS) == surfaced_keys()

    def test_excluded_prefixes_match_sanitizer(self):
        from repro.detlint.sanitizer import FINGERPRINT_IGNORED_PREFIXES

        assert set(FINGERPRINT_IGNORED_PREFIXES) == set(excluded_prefixes())

    def test_every_key_under_a_namespace_root(self):
        for spec in COUNTER_REGISTRY:
            assert spec.key in NAMESPACE_ROOTS or spec.key.startswith(
                NAMESPACE_ROOTS
            ) or not spec.key.count("."), spec.key

    def test_excluded_exacts_covered_by_their_prefix(self):
        for spec in COUNTER_REGISTRY:
            if spec.fingerprint == "excluded" and not spec.is_prefix:
                assert any(
                    spec.key.startswith(p)
                    for p, ps in COUNTER_PREFIXES.items()
                    if ps.fingerprint == "excluded"
                ), spec.key

    def test_check_counter_key(self):
        assert check_counter_key("events") is None
        assert check_counter_key("faults.crashes") is None
        assert check_counter_key("perf.time_us.whatever") is None  # open
        assert check_counter_key("perf.sched.whatever") is not None  # closed
        assert check_counter_key("perf.nope") is not None
        assert check_counter_key("faults.", prefix_only=True) is None
        assert check_counter_key("faults.xyz_", prefix_only=True) is not None


class TestKnobRegistry:
    def test_registry_matches_simulation_config(self):
        from repro.sim.runner import SimulationConfig

        fields = {f.name for f in dataclasses.fields(SimulationConfig)}
        assert fields == set(KNOB_REGISTRY)

    def test_every_knob_reaches_users(self):
        for name, spec in KNOB_REGISTRY.items():
            assert spec.flags or spec.api_only, name

    def test_flags_exist_in_cli(self):
        text = (SRC_TREE / "cli.py").read_text(encoding="utf-8")
        for name, spec in KNOB_REGISTRY.items():
            for flag in spec.flags:
                assert f'"{flag}"' in text, (name, flag)


class TestLayerRegistry:
    def test_module_for_path(self):
        assert module_for_path("src/repro/core/node.py") == "repro.core.node"
        assert module_for_path("src/repro/sim/__init__.py") == "repro.sim"

    def test_unknown_package_is_not_covered_by_facade(self):
        assert allowed_packages("repro.newpkg.thing") is None

    def test_core_may_not_import_exec(self):
        allowed = allowed_packages("repro.core.node")
        assert allowed is not None and "exec" not in allowed


class TestSeamRegistryLive:
    def test_twin_and_reference_signatures_hold_at_runtime(self):
        for seam in SEAM_REGISTRY:
            if seam.kind == "class":
                continue
            left = self._resolve(seam.left)
            right = self._resolve(seam.right)
            lp = list(inspect.signature(left).parameters)
            rp = list(inspect.signature(right).parameters)
            if seam.kind == "twin":
                assert set(lp) == set(rp), seam.name
            else:  # reference: ordered prefix
                assert lp[: len(rp)] == rp, seam.name

    def test_class_seam_holds_at_runtime(self):
        from repro.catalog.dht import ShardedMetadataServer
        from repro.catalog.server import MetadataServer

        for name, member in vars(MetadataServer).items():
            if name.startswith("_") or not callable(member):
                continue
            twin = getattr(ShardedMetadataServer, name, None)
            assert twin is not None, name
            assert list(inspect.signature(member).parameters) == list(
                inspect.signature(twin).parameters
            ), name

    @staticmethod
    def _resolve(ref):
        import importlib

        rel, qualname = ref
        module = importlib.import_module(
            "repro." + rel[: -len(".py")].replace("/", ".")
        )
        return getattr(module, qualname)


class TestWireRegistry:
    def test_metadata_record_fields(self):
        from repro.catalog.metadata import Metadata

        names = tuple(f.name for f in dataclasses.fields(Metadata))
        assert names == METADATA_RECORD_FIELDS

    def test_message_fields(self):
        import repro.net.messages as messages

        for class_name, expected in MESSAGE_FIELDS.items():
            cls = getattr(messages, class_name)
            assert tuple(f.name for f in dataclasses.fields(cls)) == expected
