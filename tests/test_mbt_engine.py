"""Scenario tests for the MBT protocol engine."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import pytest

from repro.catalog.files import PIECE_SIZE, FileDescriptor, piece_payload
from repro.catalog.server import FileServer, MetadataServer
from repro.core.mbt import (
    MobileBitTorrent,
    ProtocolConfig,
    ProtocolVariant,
    SchedulingMode,
)
from repro.core.node import NodeState
from repro.net.medium import ContactBudget
from repro.sim.metrics import MetricsCollector
from repro.traces.base import Contact
from repro.types import DAY, NodeId, Uri

from conftest import clique_contact, make_metadata, make_node, make_query


class Harness:
    """A hand-wired engine over explicit node states."""

    def __init__(
        self,
        registry,
        num_nodes: int = 3,
        access: Sequence[int] = (),
        selfish: Sequence[int] = (),
        config: Optional[ProtocolConfig] = None,
    ) -> None:
        self.registry = registry
        self.states: Dict[NodeId, NodeState] = {
            NodeId(i): make_node(registry, node=i, internet_access=i in access,
                                 selfish=i in selfish)
            for i in range(num_nodes)
        }
        self.metadata_server = MetadataServer()
        self.file_server = FileServer()
        self.metrics = MetricsCollector()
        self.engine = MobileBitTorrent(
            self.states,
            self.metadata_server,
            self.file_server,
            self.metrics,
            config or ProtocolConfig(),
        )

    def publish(self, record, pieces: bool = True) -> None:
        self.metadata_server.publish(record)
        if pieces:
            self.file_server.publish(
                FileDescriptor(
                    uri=record.uri,
                    title_tokens=tuple(record.name.split()),
                    publisher=record.publisher,
                    size_bytes=record.num_pieces * PIECE_SIZE,
                    popularity=record.popularity,
                    created_at=record.created_at,
                    ttl=record.ttl,
                )
            )

    def give_piece(self, node: int, record, index: int) -> None:
        state = self.states[NodeId(node)]
        state.accept_metadata(record, 0.0)
        state.accept_piece(
            record.uri, index, piece_payload(record.uri, index), record.checksums[index]
        )

    def contact(self, members: Sequence[int], now: float = 0.0) -> None:
        self.engine.handle_contact(clique_contact(now, now + 60.0, members), now)


class TestMetadataPhase:
    def test_broadcast_reaches_all_members(self, registry):
        h = Harness(registry, num_nodes=4)
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1, 2, 3])
        for i in range(4):
            assert record.uri in h.states[NodeId(i)].metadata

    def test_budget_limits_transmissions(self, registry):
        h = Harness(registry, config=ProtocolConfig(budget=ContactBudget(2, 0)))
        for i in range(5):
            h.states[NodeId(0)].accept_metadata(
                make_metadata(registry, uri=f"dtn://fox/{i}"), 0.0
            )
        h.contact([0, 1])
        assert len(h.states[NodeId(1)].metadata) == 2
        assert h.metrics.metadata_transmissions == 2

    def test_requested_metadata_sent_under_tight_budget(self, registry):
        h = Harness(registry, config=ProtocolConfig(budget=ContactBudget(1, 0)))
        wanted = make_metadata(registry, uri="dtn://fox/want",
                               name="news island s01e01", popularity=0.01)
        noise = make_metadata(registry, uri="dtn://fox/noise",
                              name="drama desert s01e02", popularity=0.99)
        h.states[NodeId(0)].accept_metadata(wanted, 0.0)
        h.states[NodeId(0)].accept_metadata(noise, 0.0)
        h.states[NodeId(1)].add_own_query(make_query(1, wanted.uri, ["island"]))
        h.contact([0, 1])
        assert wanted.uri in h.states[NodeId(1)].metadata
        assert noise.uri not in h.states[NodeId(1)].metadata

    def test_mbt_qm_has_no_metadata_phase(self, registry):
        h = Harness(registry, config=ProtocolConfig(variant=ProtocolVariant.MBT_QM))
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1])
        assert record.uri not in h.states[NodeId(1)].metadata

    def test_metadata_delivery_recorded(self, registry):
        h = Harness(registry)
        record = make_metadata(registry, name="news island s01e01")
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        query = make_query(1, record.uri, ["island"])
        h.states[NodeId(1)].add_own_query(query)
        h.metrics.register_query(query, access_node=False)
        h.contact([0, 1])
        assert h.metrics.records[0].metadata_delivered

    def test_zero_budget_sends_nothing(self, registry):
        h = Harness(registry, config=ProtocolConfig(budget=ContactBudget(0, 0)))
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1])
        assert record.uri not in h.states[NodeId(1)].metadata


class TestPiecePhase:
    def test_piece_broadcast_with_attached_metadata(self, registry):
        h = Harness(registry)
        record = make_metadata(registry)
        h.give_piece(0, record, 0)
        h.contact([0, 1, 2])
        for i in (1, 2):
            state = h.states[NodeId(i)]
            assert state.pieces.pieces_of(record.uri) == {0}
            assert record.uri in state.metadata  # attached metadata stored

    def test_file_completion_recorded(self, registry):
        h = Harness(registry)
        record = make_metadata(registry, name="news island s01e01")
        h.give_piece(0, record, 0)
        query = make_query(1, record.uri, ["island"])
        h.states[NodeId(1)].add_own_query(query)
        h.metrics.register_query(query, access_node=False)
        h.contact([0, 1])
        assert h.metrics.records[0].file_delivered
        assert h.states[NodeId(1)].stats.files_completed == 1

    def test_multi_piece_file_requires_all_pieces(self, registry):
        h = Harness(registry, config=ProtocolConfig(budget=ContactBudget(5, 1)))
        record = make_metadata(registry, num_pieces=2, name="news island s01e01")
        h.give_piece(0, record, 0)
        h.give_piece(0, record, 1)
        query = make_query(1, record.uri, ["island"])
        h.states[NodeId(1)].add_own_query(query)
        h.metrics.register_query(query, access_node=False)
        h.contact([0, 1], now=0.0)
        assert not h.metrics.records[0].file_delivered  # one piece only
        h.contact([0, 1], now=100.0)
        assert h.metrics.records[0].file_delivered

    def test_requested_piece_beats_popular_piece(self, registry):
        h = Harness(registry, config=ProtocolConfig(budget=ContactBudget(0, 1)))
        wanted = make_metadata(registry, uri="dtn://fox/want",
                               name="news island s01e01", popularity=0.01)
        noise = make_metadata(registry, uri="dtn://fox/noise",
                              name="drama desert s01e02", popularity=0.99)
        h.give_piece(0, wanted, 0)
        h.give_piece(0, noise, 0)
        receiver = h.states[NodeId(1)]
        receiver.accept_metadata(wanted, 0.0)
        receiver.add_own_query(make_query(1, wanted.uri, ["island"]))
        h.contact([0, 1])
        assert receiver.pieces.pieces_of(wanted.uri) == {0}
        assert receiver.pieces.pieces_of(noise.uri) == frozenset()

    def test_credits_rewarded_on_reception(self, registry):
        h = Harness(registry)
        record = make_metadata(registry, name="news island s01e01", popularity=0.4)
        h.give_piece(0, record, 0)
        wanting = h.states[NodeId(1)]
        wanting.accept_metadata(record, 0.0)
        wanting.add_own_query(make_query(1, record.uri, ["island"]))
        bystander = h.states[NodeId(2)]
        h.contact([0, 1, 2])
        # Node 1 requested the file: sender earns the full 5 credits.
        assert wanting.credits.credit_of(NodeId(0)) >= 5.0
        # Node 2 got it unrequested: sender earns the popularity value.
        assert 0.0 < bystander.credits.credit_of(NodeId(0)) < 5.0


class TestSchedulingModes:
    def test_selfish_node_sends_nothing_in_cyclic_mode(self, registry):
        config = ProtocolConfig(
            tit_for_tat=True, scheduling=SchedulingMode.CYCLIC,
            budget=ContactBudget(5, 5),
        )
        h = Harness(registry, selfish=[0], config=config)
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1, 2])
        assert record.uri not in h.states[NodeId(1)].metadata
        assert h.states[NodeId(0)].stats.metadata_sent == 0

    def test_selfish_node_still_receives(self, registry):
        config = ProtocolConfig(tit_for_tat=True, budget=ContactBudget(5, 5))
        h = Harness(registry, selfish=[1], config=config)
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1])
        assert record.uri in h.states[NodeId(1)].metadata

    def test_cooperative_skips_selfish_holders(self, registry):
        h = Harness(registry, selfish=[0], config=ProtocolConfig())
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1])
        assert record.uri not in h.states[NodeId(1)].metadata

    def test_default_scheduling_follows_policy(self):
        assert ProtocolConfig(tit_for_tat=False).effective_scheduling() is (
            SchedulingMode.COORDINATOR
        )
        assert ProtocolConfig(tit_for_tat=True).effective_scheduling() is (
            SchedulingMode.CYCLIC
        )

    def test_explicit_scheduling_override(self):
        config = ProtocolConfig(tit_for_tat=True, scheduling=SchedulingMode.COORDINATOR)
        assert config.effective_scheduling() is SchedulingMode.COORDINATOR

    def test_cyclic_mode_shares_budget_between_senders(self, registry):
        config = ProtocolConfig(
            scheduling=SchedulingMode.CYCLIC, budget=ContactBudget(4, 0)
        )
        h = Harness(registry, config=config)
        for node in (0, 1):
            for i in range(3):
                h.states[NodeId(node)].accept_metadata(
                    make_metadata(registry, uri=f"dtn://fox/{node}-{i}"), 0.0
                )
        h.contact([0, 1])
        assert h.states[NodeId(0)].stats.metadata_sent == 2
        assert h.states[NodeId(1)].stats.metadata_sent == 2


class TestPairwiseMedium:
    def test_single_receiver_per_transmission(self, registry):
        h = Harness(registry, config=ProtocolConfig(broadcast=False,
                                                    budget=ContactBudget(1, 0)))
        record = make_metadata(registry)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.contact([0, 1, 2])
        received = [
            i for i in (1, 2) if record.uri in h.states[NodeId(i)].metadata
        ]
        assert len(received) == 1

    def test_requester_preferred_as_receiver(self, registry):
        h = Harness(registry, config=ProtocolConfig(broadcast=False,
                                                    budget=ContactBudget(1, 0)))
        record = make_metadata(registry, name="news island s01e01")
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.states[NodeId(2)].add_own_query(make_query(2, record.uri, ["island"]))
        h.contact([0, 1, 2])
        assert record.uri in h.states[NodeId(2)].metadata
        assert record.uri not in h.states[NodeId(1)].metadata


class TestInternetSync:
    def test_access_node_downloads_wanted_file(self, registry):
        h = Harness(registry, access=[0])
        record = make_metadata(registry, name="news island s01e01")
        h.publish(record)
        query = make_query(0, record.uri, ["island"])
        h.states[NodeId(0)].add_own_query(query)
        h.metrics.register_query(query, access_node=True)
        h.engine.internet_sync(NodeId(0), now=0.0)
        state = h.states[NodeId(0)]
        assert state.pieces.is_complete(record.uri, record.num_pieces)
        assert h.metrics.records[0].file_delivered

    def test_non_access_node_sync_is_noop(self, registry):
        h = Harness(registry, access=[])
        h.engine.internet_sync(NodeId(0), now=0.0)
        assert h.states[NodeId(0)].stats.internet_syncs == 0

    def test_push_distributes_popular_metadata(self, registry):
        h = Harness(registry, access=[0])
        record = make_metadata(registry, popularity=0.9)
        h.publish(record)
        h.engine.internet_sync(NodeId(0), now=0.0)
        assert record.uri in h.states[NodeId(0)].metadata

    def test_no_push_under_mbt_qm(self, registry):
        h = Harness(
            registry, access=[0],
            config=ProtocolConfig(variant=ProtocolVariant.MBT_QM,
                                  popular_file_downloads=0),
        )
        record = make_metadata(registry, popularity=0.9)
        h.publish(record)
        h.engine.internet_sync(NodeId(0), now=0.0)
        assert record.uri not in h.states[NodeId(0)].metadata

    def test_proxy_download_for_heard_requests(self, registry):
        h = Harness(registry, access=[0])
        record = make_metadata(registry, name="news island s01e01", popularity=0.0)
        h.publish(record)
        # Node 1 wants the file and meets node 0, which hears the
        # request in node 1's hello...
        h.states[NodeId(1)].accept_metadata(record, 0.0)
        h.states[NodeId(1)].add_own_query(make_query(1, record.uri, ["island"]))
        h.contact([0, 1], now=0.0)
        # ...then node 0 syncs and fetches the file for node 1.
        h.engine.internet_sync(NodeId(0), now=10.0)
        assert h.states[NodeId(0)].pieces.is_complete(record.uri, record.num_pieces)

    def test_foreign_query_download_only_under_mbt(self, registry):
        for variant, expect in (
            (ProtocolVariant.MBT, True),
            (ProtocolVariant.MBT_Q, False),
        ):
            h = Harness(
                registry, access=[0],
                config=ProtocolConfig(variant=variant, popular_file_downloads=0,
                                      push_limit=0),
            )
            record = make_metadata(registry, name="news island s01e01",
                                   popularity=0.0)
            h.publish(record)
            h.states[NodeId(0)].store_foreign_queries(
                NodeId(1), [make_query(1, record.uri, ["island"])]
            )
            h.engine.internet_sync(NodeId(0), now=0.0)
            complete = h.states[NodeId(0)].pieces.is_complete(
                record.uri, record.num_pieces
            )
            assert complete is expect, variant

    def test_seeds_popular_files(self, registry):
        h = Harness(registry, access=[0],
                    config=ProtocolConfig(popular_file_downloads=1))
        low = make_metadata(registry, uri="dtn://fox/low", popularity=0.1)
        high = make_metadata(registry, uri="dtn://fox/high", popularity=0.9)
        h.publish(low)
        h.publish(high)
        h.engine.internet_sync(NodeId(0), now=0.0)
        state = h.states[NodeId(0)]
        assert state.pieces.is_complete(high.uri, 1)
        assert not state.pieces.is_complete(low.uri, 1)


class TestQueryDistribution:
    def test_frequent_contact_queries_stored_under_mbt(self, registry):
        h = Harness(registry)
        h.states[NodeId(0)].frequent_contacts = {NodeId(1)}
        h.states[NodeId(1)].add_own_query(make_query(1, "dtn://fox/x", ["x1"]))
        h.contact([0, 1])
        assert len(h.states[NodeId(0)].foreign_queries(0.0)) == 1

    def test_not_stored_under_mbt_q(self, registry):
        h = Harness(registry, config=ProtocolConfig(variant=ProtocolVariant.MBT_Q))
        h.states[NodeId(0)].frequent_contacts = {NodeId(1)}
        h.states[NodeId(1)].add_own_query(make_query(1, "dtn://fox/x", ["x1"]))
        h.contact([0, 1])
        assert h.states[NodeId(0)].foreign_queries(0.0) == []

    def test_not_stored_for_infrequent_contact(self, registry):
        h = Harness(registry)
        h.states[NodeId(1)].add_own_query(make_query(1, "dtn://fox/x", ["x1"]))
        h.contact([0, 1])
        assert h.states[NodeId(0)].foreign_queries(0.0) == []

    def test_selfish_node_does_not_carry_queries(self, registry):
        h = Harness(registry, selfish=[0])
        h.states[NodeId(0)].frequent_contacts = {NodeId(1)}
        h.states[NodeId(1)].add_own_query(make_query(1, "dtn://fox/x", ["x1"]))
        h.contact([0, 1])
        assert h.states[NodeId(0)].foreign_queries(0.0) == []


class TestExpiry:
    def test_expire_all_cleans_nodes_and_servers(self, registry):
        h = Harness(registry)
        record = make_metadata(registry, ttl=100.0)
        h.publish(record)
        h.states[NodeId(0)].accept_metadata(record, 0.0)
        h.engine.expire_all(now=200.0)
        assert record.uri not in h.metadata_server
        assert record.uri not in h.file_server
        assert len(h.states[NodeId(0)].metadata) == 0
