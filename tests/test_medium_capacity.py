"""Unit tests for medium models and the §V capacity analysis."""

from __future__ import annotations

import pytest

from repro.analysis.capacity import (
    broadcast_per_node_capacity,
    capacity_gain,
    capacity_table,
    pairwise_per_node_capacity,
)
from repro.net.medium import (
    BroadcastMedium,
    ContactBudget,
    PairwiseMedium,
    budget_from_duration,
)
from repro.types import NodeId


def clique(*ids: int) -> frozenset:
    return frozenset(NodeId(i) for i in ids)


class TestContactBudget:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ContactBudget(metadata=-1, pieces=0)
        with pytest.raises(ValueError):
            ContactBudget(metadata=0, pieces=-1)

    def test_zero_budgets_allowed(self):
        budget = ContactBudget(0, 0)
        assert budget.metadata == 0 and budget.pieces == 0


class TestBroadcastMedium:
    def test_all_others_receive(self):
        medium = BroadcastMedium()
        receivers = medium.receivers(NodeId(1), clique(1, 2, 3, 4))
        assert receivers == clique(2, 3, 4)

    def test_sender_must_be_member(self):
        with pytest.raises(ValueError):
            BroadcastMedium().receivers(NodeId(9), clique(1, 2))

    def test_capacity_increases_with_density(self):
        medium = BroadcastMedium()
        caps = [medium.per_node_capacity(n) for n in range(2, 10)]
        assert caps == sorted(caps)
        assert medium.per_node_capacity(2) == pytest.approx(0.5)
        assert medium.per_node_capacity(10) == pytest.approx(0.9)

    def test_singleton_capacity_zero(self):
        assert BroadcastMedium().per_node_capacity(1) == 0.0

    def test_capacity_rejects_zero(self):
        with pytest.raises(ValueError):
            BroadcastMedium().per_node_capacity(0)


class TestPairwiseMedium:
    def test_single_receiver(self):
        medium = PairwiseMedium()
        receivers = medium.receivers(NodeId(3), clique(1, 2, 3))
        assert len(receivers) == 1

    def test_capacity_decreases_with_density(self):
        medium = PairwiseMedium()
        caps = [medium.per_node_capacity(n) for n in range(2, 10)]
        assert caps == sorted(caps, reverse=True)
        assert medium.per_node_capacity(2) == pytest.approx(0.5)
        assert medium.per_node_capacity(10) == pytest.approx(0.1)

    def test_receivers_for_peer(self):
        assert PairwiseMedium.receivers_for_peer(NodeId(7)) == clique(7)

    def test_names(self):
        assert BroadcastMedium().name == "broadcast"
        assert PairwiseMedium().name == "pairwise"


class TestBudgetFromDuration:
    def test_splits_volume(self):
        budget = budget_from_duration(
            duration=100.0,
            bandwidth_bytes_per_s=1000.0,
            metadata_size=100,
            piece_size=1000,
            metadata_share=0.2,
        )
        assert budget.metadata == 200  # 20kB / 100B
        assert budget.pieces == 80  # 80kB / 1000B

    def test_longer_contacts_get_more(self):
        short = budget_from_duration(10.0, 1000.0, 100, 1000)
        long = budget_from_duration(100.0, 1000.0, 100, 1000)
        assert long.pieces > short.pieces
        assert long.metadata > short.metadata

    def test_validation(self):
        with pytest.raises(ValueError):
            budget_from_duration(0.0, 1000.0, 100, 1000)
        with pytest.raises(ValueError):
            budget_from_duration(10.0, -1.0, 100, 1000)
        with pytest.raises(ValueError):
            budget_from_duration(10.0, 1000.0, 100, 1000, metadata_share=2.0)


class TestCapacityAnalysis:
    def test_paper_formulas(self):
        # §V: broadcast (n−1)/n vs pair-wise 1/n.
        for n in range(2, 30):
            assert broadcast_per_node_capacity(n) == pytest.approx((n - 1) / n)
            assert pairwise_per_node_capacity(n) == pytest.approx(1 / n)

    def test_equal_only_at_two(self):
        assert broadcast_per_node_capacity(2) == pairwise_per_node_capacity(2)
        for n in range(3, 20):
            assert broadcast_per_node_capacity(n) > pairwise_per_node_capacity(n)

    def test_gain_is_n_minus_one(self):
        for n in range(2, 10):
            assert capacity_gain(n) == n - 1

    def test_gain_rejects_singleton(self):
        with pytest.raises(ValueError):
            capacity_gain(1)

    def test_channel_capacity_scales(self):
        assert broadcast_per_node_capacity(4, channel_capacity=2.0) == pytest.approx(1.5)
        assert pairwise_per_node_capacity(4, channel_capacity=2.0) == pytest.approx(0.5)

    def test_capacity_table(self):
        table = capacity_table([2, 4, 8])
        assert [p.clique_size for p in table] == [2, 4, 8]
        assert table[-1].gain == pytest.approx(7.0)

    def test_medium_models_agree_with_analysis(self):
        broadcast = BroadcastMedium()
        pairwise = PairwiseMedium()
        for n in range(1, 12):
            assert broadcast.per_node_capacity(n) == pytest.approx(
                broadcast_per_node_capacity(n)
            )
            assert pairwise.per_node_capacity(n) == pytest.approx(
                pairwise_per_node_capacity(n)
            )
