"""Unit tests for the piece selection policies (§V)."""

from __future__ import annotations

from typing import Dict

import pytest

from repro.catalog.files import piece_payload
from repro.core import download
from repro.core.node import NodeState
from repro.types import NodeId

from conftest import make_metadata, make_node, make_query


@pytest.fixture
def clique(registry) -> Dict[NodeId, NodeState]:
    return {NodeId(i): make_node(registry, node=i) for i in range(3)}


def give_pieces(state: NodeState, record, indices) -> None:
    """Store metadata + verified pieces on a node."""
    state.accept_metadata(record, 0.0)
    for index in indices:
        payload = piece_payload(record.uri, index)
        state.accept_piece(record.uri, index, payload, record.checksums[index])


class TestPieceCandidates:
    def test_candidate_per_missing_piece(self, registry, clique):
        record = make_metadata(registry, num_pieces=2)
        give_pieces(clique[NodeId(0)], record, [0, 1])
        cands = download.build_piece_candidates(clique, 0.0)
        assert {(c.uri, c.index) for c in cands} == {(record.uri, 0), (record.uri, 1)}
        for cand in cands:
            assert cand.holders == {NodeId(0)}
            assert cand.missing == {NodeId(1), NodeId(2)}

    def test_sender_needs_metadata_too(self, registry, clique):
        record = make_metadata(registry)
        # Node 0 has the piece but no metadata anywhere: unservable.
        clique[NodeId(0)].pieces.add_unverified(record.uri, 0)
        assert download.build_piece_candidates(clique, 0.0) == []

    def test_requesters_from_wanted_uris(self, registry, clique):
        record = make_metadata(registry, name="news island s01e01")
        give_pieces(clique[NodeId(0)], record, [0])
        # Node 1 has the metadata and a matching query: it wants the file.
        clique[NodeId(1)].accept_metadata(record, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, record.uri, ["island"]))
        cand = download.build_piece_candidates(clique, 0.0)[0]
        assert cand.requesters == {NodeId(1)}
        # Node 2 lacks the metadata: missing but not requesting.
        assert NodeId(2) in cand.missing

    def test_universally_held_piece_not_candidate(self, registry, clique):
        record = make_metadata(registry)
        for state in clique.values():
            give_pieces(state, record, [0])
        assert download.build_piece_candidates(clique, 0.0) == []

    def test_expired_metadata_not_served(self, registry, clique):
        record = make_metadata(registry, ttl=10.0)
        give_pieces(clique[NodeId(0)], record, [0])
        assert download.build_piece_candidates(clique, 20.0) == []


class TestCooperativeRanking:
    def test_requested_pieces_first(self, registry, clique):
        wanted = make_metadata(registry, uri="dtn://fox/want",
                               name="news island s01e01", popularity=0.1)
        popular = make_metadata(registry, uri="dtn://fox/pop",
                                name="drama desert s01e02", popularity=0.9)
        give_pieces(clique[NodeId(0)], wanted, [0])
        give_pieces(clique[NodeId(0)], popular, [0])
        clique[NodeId(1)].accept_metadata(wanted, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, wanted.uri, ["island"]))
        ranked = download.select_cooperative(
            download.build_piece_candidates(clique, 0.0)
        )
        assert ranked[0].uri == "dtn://fox/want"

    def test_more_requesters_first(self, registry, clique):
        one = make_metadata(registry, uri="dtn://fox/one", name="news island s01e01")
        two = make_metadata(registry, uri="dtn://fox/two", name="drama desert s01e02")
        give_pieces(clique[NodeId(0)], one, [0])
        give_pieces(clique[NodeId(0)], two, [0])
        for node in (1, 2):
            clique[NodeId(node)].accept_metadata(two, 0.0)
            clique[NodeId(node)].add_own_query(make_query(node, two.uri, ["desert"]))
        clique[NodeId(1)].accept_metadata(one, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, one.uri, ["island"]))
        ranked = download.select_cooperative(
            download.build_piece_candidates(clique, 0.0)
        )
        assert ranked[0].uri == "dtn://fox/two"

    def test_phase_two_by_popularity(self, registry, clique):
        low = make_metadata(registry, uri="dtn://fox/low", popularity=0.1)
        high = make_metadata(registry, uri="dtn://fox/high", popularity=0.8)
        give_pieces(clique[NodeId(0)], low, [0])
        give_pieces(clique[NodeId(0)], high, [0])
        ranked = download.select_cooperative(
            download.build_piece_candidates(clique, 0.0)
        )
        assert ranked[0].uri == "dtn://fox/high"

    def test_piece_index_is_final_tiebreak(self, registry, clique):
        record = make_metadata(registry, num_pieces=3)
        give_pieces(clique[NodeId(0)], record, [0, 1, 2])
        ranked = download.select_cooperative(
            download.build_piece_candidates(clique, 0.0)
        )
        assert [c.index for c in ranked] == [0, 1, 2]


class TestTitForTatRanking:
    def test_credit_weight_dominates(self, registry, clique):
        rich = make_metadata(registry, uri="dtn://fox/rich",
                             name="news island s01e01", popularity=0.1)
        poor = make_metadata(registry, uri="dtn://fox/poor",
                             name="drama desert s01e02", popularity=0.9)
        sender = clique[NodeId(0)]
        give_pieces(sender, rich, [0])
        give_pieces(sender, poor, [0])
        for node, record in ((1, rich), (2, poor)):
            clique[NodeId(node)].accept_metadata(record, 0.0)
            clique[NodeId(node)].add_own_query(
                make_query(node, record.uri, list(record.token_set)[:1])
            )
        sender.credits.reward_requested(NodeId(1))
        cands = download.build_piece_candidates(clique, 0.0)
        # Requesters may be empty if the sampled token missed; ensure setup.
        assert any(c.requesters for c in cands)
        ranked = download.select_for_sender(cands, sender, tit_for_tat=True)
        assert ranked[0].uri == "dtn://fox/rich"

    def test_select_for_sender_filters(self, registry, clique):
        mine = make_metadata(registry, uri="dtn://fox/mine")
        theirs = make_metadata(registry, uri="dtn://fox/theirs")
        give_pieces(clique[NodeId(0)], mine, [0])
        give_pieces(clique[NodeId(1)], theirs, [0])
        cands = download.build_piece_candidates(clique, 0.0)
        ranked = download.select_for_sender(cands, clique[NodeId(0)], tit_for_tat=False)
        assert [c.uri for c in ranked] == ["dtn://fox/mine"]

    def test_advertised_downloads_view(self, registry, clique):
        record = make_metadata(registry, name="news island s01e01")
        clique[NodeId(1)].accept_metadata(record, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, record.uri, ["island"]))
        downloads = download.advertised_downloads(clique, 0.0)
        assert downloads[NodeId(1)] == {record.uri}
        assert downloads[NodeId(0)] == frozenset()
