"""Tests for the experiment harness (sweeps, figures, workloads)."""

from __future__ import annotations

import pytest

from repro.core.mbt import ProtocolVariant
from repro.experiments import FIGURES
from repro.experiments.sweep import cached_trace_factory, run_sweep
from repro.experiments.workloads import (
    dieselnet_base_config,
    dieselnet_trace,
    nus_base_config,
    nus_trace,
)
from repro.sim.runner import SimulationConfig
from repro.traces.base import ContactTrace

from conftest import pair_contact
from dataclasses import replace


def micro_trace(seed: int) -> ContactTrace:
    contacts = []
    for day in range(3):
        base = day * 86400.0
        contacts.append(pair_contact(base + 50_000.0, base + 50_060.0, 0, 1))
        contacts.append(pair_contact(base + 60_000.0, base + 60_060.0, 1, 2))
        contacts.append(pair_contact(base + 70_000.0, base + 70_060.0, 2, 3))
    return ContactTrace(contacts, name=f"micro{seed}")


class TestRunSweep:
    def _sweep(self, seeds=(0,)):
        return run_sweep(
            name="micro",
            x_label="access",
            x_values=(0.25, 0.75),
            trace_factory=cached_trace_factory(micro_trace),
            config_factory=lambda cfg, x, seed: replace(
                cfg, internet_access_fraction=x, seed=seed
            ),
            base_config=SimulationConfig(files_per_day=5, num_days=3),
            seeds=seeds,
        )

    def test_sweep_structure(self):
        result = self._sweep()
        assert result.x_values == (0.25, 0.75)
        assert result.protocols == ("mbt", "mbt-q", "mbt-qm")
        assert len(result.points) == 2
        for point in result.points:
            for protocol in result.protocols:
                meta, file_ratio = point.ratios[protocol]
                assert 0.0 <= meta <= 1.0
                assert 0.0 <= file_ratio <= 1.0

    def test_series_extraction(self):
        result = self._sweep()
        series = result.series("mbt")
        assert len(series.metadata_ratios) == 2
        assert series.metadata_ratios == result.metadata_series("mbt")
        assert series.file_ratios == result.file_series("mbt")

    def test_format_table_contains_everything(self):
        text = self._sweep().format_table()
        assert "micro" in text
        assert "mbt-qm file" in text
        assert text.count("\n") == 3  # title + header + 2 rows

    def test_seed_averaging_runs(self):
        result = self._sweep(seeds=(0, 1))
        assert len(result.points) == 2

    def test_cached_trace_factory_caches(self):
        calls = []

        def build(seed: int) -> ContactTrace:
            calls.append(seed)
            return micro_trace(seed)

        factory = cached_trace_factory(build)
        factory(0.1, 0)
        factory(0.9, 0)
        factory(0.9, 1)
        assert calls == [0, 1]


class TestFigureRegistry:
    def test_all_panels_registered(self):
        expected = {
            "fig2a", "fig2b", "fig2c", "fig2d", "fig2e",
            "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f",
            "figloss", "figrobust",
        }
        assert set(FIGURES) == expected

    def test_panels_are_callable_with_scale_and_seeds(self):
        for function in FIGURES.values():
            assert callable(function)


class TestWorkloads:
    def test_trace_presets_deterministic(self):
        a = dieselnet_trace("fast", seed=1)
        b = dieselnet_trace("fast", seed=1)
        assert len(a) == len(b)

    def test_scales_differ(self):
        fast = dieselnet_trace("fast", seed=0)
        paper = dieselnet_trace("paper", seed=0)
        assert paper.num_nodes > fast.num_nodes

    def test_nus_attendance_knob(self):
        low = nus_trace("fast", seed=0, attendance_rate=0.3)
        high = nus_trace("fast", seed=0, attendance_rate=1.0)
        assert sum(c.size for c in high) > sum(c.size for c in low)

    def test_base_configs_follow_paper(self):
        diesel = dieselnet_base_config()
        nus = nus_base_config()
        assert diesel.frequent_contact_max_gap_days == 3.0  # §VI-A
        assert nus.frequent_contact_max_gap_days == 1.0  # §VI-A
        assert diesel.files_per_day == nus.files_per_day
