"""Tests for the wire-level runtime: codec, radio, node, harness."""

from __future__ import annotations

import pytest

from repro.catalog.files import piece_payload
from repro.core.mbt import ProtocolConfig, ProtocolVariant, SchedulingMode
from repro.runtime import codec
from repro.runtime.codec import CodecError, FrameType
from repro.runtime.harness import RuntimeConfig, RuntimeHarness
from repro.runtime.node import DTNNode
from repro.runtime.radio import EmulatedRadio
from repro.sim.metrics import MetricsCollector
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.nus import NUSConfig, generate_nus_trace
from repro.types import NodeId, Uri

from conftest import make_metadata, make_node, make_query


class TestCodec:
    def test_hello_round_trip(self):
        data = codec.build_hello(
            sender=NodeId(3),
            sent_at=12.5,
            heard=(1, 2),
            query_tokens=(("island", "news"),),
            downloading=("dtn://fox/a",),
            held_uris=("dtn://fox/a", "dtn://fox/b"),
            have={"dtn://fox/a": (0, 2)},
            carried_query_tokens=(("drama",),),
        )
        frame = codec.decode_frame(data)
        assert frame.frame_type is FrameType.HELLO
        assert frame.sender == 3
        assert frame.sent_at == 12.5
        assert frame.field("heard") == [1, 2]
        assert frame.field("have") == {"dtn://fox/a": [0, 2]}
        assert frame.field("carried_query_tokens") == [["drama"]]

    def test_metadata_round_trip(self, registry):
        record = make_metadata(registry, num_pieces=2)
        data = codec.build_metadata_frame(NodeId(1), 5.0, record)
        frame = codec.decode_frame(data)
        rebuilt = codec.metadata_from_fields(frame.field("record"))
        assert rebuilt == record  # full equality including signature

    def test_piece_round_trip(self, registry):
        record = make_metadata(registry)
        payload = piece_payload(record.uri, 0)
        data = codec.build_piece_frame(NodeId(1), 5.0, record, 0, payload)
        frame = codec.decode_frame(data)
        assert codec.piece_payload_from_frame(frame) == payload
        assert frame.field("index") == 0

    def test_truncated_frame_rejected(self, registry):
        record = make_metadata(registry)
        data = codec.build_metadata_frame(NodeId(1), 5.0, record)
        with pytest.raises(CodecError):
            codec.decode_frame(data[:-3])

    def test_bit_flip_rejected(self, registry):
        record = make_metadata(registry)
        data = bytearray(codec.build_metadata_frame(NodeId(1), 5.0, record))
        data[20] ^= 0xFF
        with pytest.raises(CodecError):
            codec.decode_frame(bytes(data))

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError, match="magic"):
            codec.decode_frame(b"XXXX" + b"\x00" * 20)

    def test_too_short_rejected(self):
        with pytest.raises(CodecError, match="short"):
            codec.decode_frame(b"MB")

    def test_unknown_type_rejected(self):
        data = codec.encode_frame(FrameType.HELLO, NodeId(1), 0.0, {})
        # Craft a frame with an invalid type by editing the body.
        import json, struct, binascii

        body = json.dumps(
            {"type": "warp", "sender": 1, "sent_at": 0.0},
            separators=(",", ":"), sort_keys=True,
        ).encode()
        crc = binascii.crc32(body) & 0xFFFFFFFF
        forged = struct.pack(">4sII", b"MBT1", len(body), crc) + body
        with pytest.raises(CodecError, match="unknown frame type"):
            codec.decode_frame(forged)

    def test_bad_metadata_fields_rejected(self):
        with pytest.raises(CodecError):
            codec.metadata_from_fields({"uri": "x"})


class TestRadio:
    def test_broadcast_reaches_all_other_members(self):
        radio = EmulatedRadio()
        received = {1: [], 2: [], 3: []}
        for node in (1, 2, 3):
            radio.join(NodeId(node), lambda s, d, n=node: received[n].append((s, d)))
        count = radio.broadcast(NodeId(1), b"frame")
        assert count == 2
        assert received[1] == []
        assert received[2] == [(1, b"frame")]
        assert received[3] == [(1, b"frame")]

    def test_sender_must_be_member(self):
        radio = EmulatedRadio()
        with pytest.raises(ValueError):
            radio.broadcast(NodeId(9), b"x")

    def test_leave_stops_reception(self):
        radio = EmulatedRadio()
        got = []
        radio.join(NodeId(1), lambda s, d: got.append(d))
        radio.join(NodeId(2), lambda s, d: None)
        radio.leave(NodeId(1))
        radio.broadcast(NodeId(2), b"x")
        assert got == []

    def test_byte_accounting(self):
        radio = EmulatedRadio()
        radio.join(NodeId(1), lambda s, d: None)
        radio.join(NodeId(2), lambda s, d: None)
        radio.broadcast(NodeId(1), b"12345")
        assert radio.frames_sent == 1
        assert radio.bytes_sent == 5
        assert radio.deliveries == 1

    def test_fault_hook_can_corrupt(self):
        radio = EmulatedRadio()
        got = []
        radio.join(NodeId(1), lambda s, d: None)
        radio.join(NodeId(2), lambda s, d: got.append(d))
        radio.fault_hook = lambda s, d: d[:-1] + b"?"
        radio.broadcast(NodeId(1), b"hello")
        assert got == [b"hell?"]

    def test_fault_hook_can_drop(self):
        radio = EmulatedRadio()
        got = []
        radio.join(NodeId(1), lambda s, d: None)
        radio.join(NodeId(2), lambda s, d: got.append(d))
        radio.fault_hook = lambda s, d: None
        radio.broadcast(NodeId(1), b"hello")
        assert got == []


@pytest.fixture
def device_pair(registry):
    config = ProtocolConfig()
    a = DTNNode(make_node(registry, node=0), config, MetricsCollector())
    b = DTNNode(make_node(registry, node=1), config, MetricsCollector())
    return a, b


def handshake(a: DTNNode, b: DTNNode, now: float = 0.0) -> None:
    clique = frozenset({a.node_id, b.node_id})
    a.begin_contact(clique)
    b.begin_contact(clique)
    b.on_frame(a.node_id, a.hello_bytes(now), now)
    a.on_frame(b.node_id, b.hello_bytes(now), now)


class TestDTNNode:
    def test_hello_teaches_peer_state(self, registry, device_pair):
        a, b = device_pair
        record = make_metadata(registry, name="news island s01e01")
        a.state.accept_metadata(record, 0.0)
        a.state.add_own_query(make_query(0, record.uri, ["island"]))
        handshake(a, b)
        assert record.uri in b.peer_held[NodeId(0)]
        assert frozenset({"island"}) in b.peer_query_tokens[NodeId(0)]
        assert record.uri in b.peer_downloading[NodeId(0)]

    def test_metadata_flows_after_handshake(self, registry, device_pair):
        a, b = device_pair
        record = make_metadata(registry)
        a.state.accept_metadata(record, 0.0)
        handshake(a, b)
        clique = frozenset({NodeId(0), NodeId(1)})
        frame = a.next_metadata_frame(0.0, clique)
        assert frame is not None
        b.on_frame(a.node_id, frame, 0.0)
        assert record.uri in b.state.metadata

    def test_no_retransmission_of_held_records(self, registry, device_pair):
        a, b = device_pair
        record = make_metadata(registry)
        a.state.accept_metadata(record, 0.0)
        b.state.accept_metadata(record, 0.0)
        handshake(a, b)
        clique = frozenset({NodeId(0), NodeId(1)})
        assert a.next_metadata_frame(0.0, clique) is None

    def test_requested_piece_prioritized(self, registry, device_pair):
        a, b = device_pair
        wanted = make_metadata(registry, uri="dtn://fox/want",
                               name="news island s01e01", popularity=0.01)
        noise = make_metadata(registry, uri="dtn://fox/noise",
                              name="drama desert s01e02", popularity=0.99)
        for record in (wanted, noise):
            a.state.accept_metadata(record, 0.0)
            payload = piece_payload(record.uri, 0)
            a.state.accept_piece(record.uri, 0, payload, record.checksums[0])
        b.state.accept_metadata(wanted, 0.0)
        b.state.add_own_query(make_query(1, wanted.uri, ["island"]))
        handshake(a, b)
        clique = frozenset({NodeId(0), NodeId(1)})
        proposal = a.propose_piece(0.0, clique)
        assert proposal is not None
        assert proposal[1] == wanted.uri

    def test_piece_completion_recorded(self, registry, device_pair):
        a, b = device_pair
        record = make_metadata(registry, name="news island s01e01")
        a.state.accept_metadata(record, 0.0)
        payload = piece_payload(record.uri, 0)
        a.state.accept_piece(record.uri, 0, payload, record.checksums[0])
        query = make_query(1, record.uri, ["island"])
        b.state.add_own_query(query)
        b.metrics.register_query(query, access_node=False)
        handshake(a, b)
        clique = frozenset({NodeId(0), NodeId(1)})
        frame = a.next_piece_frame(0.0, clique)
        assert frame is not None
        b.on_frame(a.node_id, frame, 0.0)
        assert b.metrics.records[0].file_delivered

    def test_corrupt_frame_counted_and_ignored(self, registry, device_pair):
        a, b = device_pair
        b.on_frame(a.node_id, b"garbage-bytes", 0.0)
        assert b.frames_dropped == 1
        assert b.frames_received == 0

    def test_selfish_node_proposes_nothing(self, registry):
        config = ProtocolConfig()
        node = DTNNode(make_node(registry, node=0, selfish=True), config)
        record = make_metadata(registry)
        node.state.accept_metadata(record, 0.0)
        clique = frozenset({NodeId(0), NodeId(1)})
        assert node.propose_metadata(0.0, clique) is None
        assert node.propose_piece(0.0, clique) is None

    def test_broadcast_inference_updates_all_peer_views(self, registry):
        config = ProtocolConfig()
        devices = [DTNNode(make_node(registry, node=i), config) for i in range(3)]
        record = make_metadata(registry)
        devices[0].state.accept_metadata(record, 0.0)
        clique = frozenset(NodeId(i) for i in range(3))
        for d in devices:
            d.begin_contact(clique)
        for receiver in devices[1:]:
            for sender in devices:
                if sender is not receiver:
                    receiver.on_frame(sender.node_id, sender.hello_bytes(0.0), 0.0)
        frame = devices[0].metadata_frame_for(record.uri, 0.0)
        devices[1].on_frame(NodeId(0), frame, 0.0)
        # Node 1 infers node 2 also received the broadcast.
        assert record.uri in devices[1].peer_held[NodeId(2)]


class TestHarnessEquivalence:
    def test_matches_simulator_on_dieselnet(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=14, num_days=5), seed=3
        )
        config = SimulationConfig(seed=3, files_per_day=20)
        sim = Simulation(trace, config).run()
        runtime = RuntimeHarness(trace, config).run()
        assert abs(runtime.file_delivery_ratio - sim.file_delivery_ratio) < 0.08
        assert abs(
            runtime.metadata_delivery_ratio - sim.metadata_delivery_ratio
        ) < 0.08

    def test_matches_simulator_on_nus_cliques(self):
        trace = generate_nus_trace(
            NUSConfig(num_students=30, num_courses=6, num_days=5), seed=3
        )
        config = SimulationConfig(
            seed=3, files_per_day=20, frequent_contact_max_gap_days=1.0
        )
        sim = Simulation(trace, config).run()
        runtime = RuntimeHarness(trace, config).run()
        assert abs(runtime.file_delivery_ratio - sim.file_delivery_ratio) < 0.08

    def test_cyclic_mode_matches_cyclic_simulator(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=14, num_days=5), seed=3
        )
        config = SimulationConfig(
            seed=3, files_per_day=20, scheduling=SchedulingMode.CYCLIC
        )
        sim = Simulation(trace, config).run()
        runtime = RuntimeHarness(trace, config).run()
        assert abs(runtime.file_delivery_ratio - sim.file_delivery_ratio) < 0.08

    def test_variant_ordering_preserved_over_the_wire(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=14, num_days=5), seed=3
        )
        results = {}
        for variant in ProtocolVariant:
            config = SimulationConfig(seed=3, files_per_day=30, variant=variant)
            results[variant] = RuntimeHarness(trace, config).run()
        assert (
            results[ProtocolVariant.MBT].metadata_delivery_ratio
            >= results[ProtocolVariant.MBT_QM].metadata_delivery_ratio
        )
        assert (
            results[ProtocolVariant.MBT].file_delivery_ratio
            >= results[ProtocolVariant.MBT_QM].file_delivery_ratio - 0.02
        )

    def test_radio_accounting_exposed(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=10, num_days=3), seed=1
        )
        result = RuntimeHarness(trace, SimulationConfig(seed=1, files_per_day=10)).run()
        assert result.extra["radio_frames"] > 0
        assert result.extra["radio_bytes"] > result.extra["radio_frames"]

    def test_corrupted_radio_degrades_but_never_corrupts_state(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=12, num_days=4), seed=1
        )
        config = SimulationConfig(seed=1, files_per_day=20)
        clean = RuntimeHarness(trace, config).run()

        counter = {"n": 0}

        def flip_every_second_frame(sender, data: bytes):
            counter["n"] += 1
            if counter["n"] % 2 == 0:
                corrupted = bytearray(data)
                corrupted[len(corrupted) // 2] ^= 0xFF
                return bytes(corrupted)
            return data

        noisy_harness = RuntimeHarness(
            trace, config, RuntimeConfig(fault_hook=flip_every_second_frame)
        )
        noisy = noisy_harness.run()
        # Heavy corruption costs delivery but every surviving delivery
        # passed CRC + signature + checksum: the state is never poisoned.
        assert noisy.file_delivery_ratio <= clean.file_delivery_ratio
        dropped = sum(d.frames_dropped for d in noisy_harness.devices.values())
        assert dropped > 0

    def test_lossy_radio_only_slows_delivery(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=12, num_days=4), seed=1
        )
        config = SimulationConfig(seed=1, files_per_day=20)
        counter = {"n": 0}

        def drop_every_third_frame(sender, data: bytes):
            counter["n"] += 1
            return None if counter["n"] % 3 == 0 else data

        lossy = RuntimeHarness(
            trace, config, RuntimeConfig(fault_hook=drop_every_third_frame)
        ).run()
        clean = RuntimeHarness(trace, config).run()
        assert lossy.file_delivery_ratio <= clean.file_delivery_ratio
        assert 0.0 <= lossy.file_delivery_ratio <= 1.0
