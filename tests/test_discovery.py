"""Unit tests for the cooperative/TFT metadata selection policies."""

from __future__ import annotations

from typing import Dict

import pytest

from repro.core import discovery
from repro.core.node import NodeState
from repro.types import NodeId

from conftest import make_metadata, make_node, make_query


@pytest.fixture
def clique(registry) -> Dict[NodeId, NodeState]:
    return {NodeId(i): make_node(registry, node=i) for i in range(3)}


class TestCandidateBuilding:
    def test_candidate_requires_holder_and_missing(self, registry, clique):
        record = make_metadata(registry)
        clique[NodeId(0)].accept_metadata(record, 0.0)
        cands = discovery.build_metadata_candidates(clique, 0.0, include_foreign=False)
        assert len(cands) == 1
        cand = cands[0]
        assert cand.holders == {NodeId(0)}
        assert cand.missing == {NodeId(1), NodeId(2)}

    def test_universally_held_record_not_a_candidate(self, registry, clique):
        record = make_metadata(registry)
        for state in clique.values():
            state.accept_metadata(record, 0.0)
        assert discovery.build_metadata_candidates(clique, 0.0, False) == []

    def test_expired_record_not_a_candidate(self, registry, clique):
        record = make_metadata(registry, ttl=10.0)
        clique[NodeId(0)].accept_metadata(record, 0.0)
        assert discovery.build_metadata_candidates(clique, 20.0, False) == []

    def test_own_requesters_from_matching_queries(self, registry, clique):
        record = make_metadata(registry, name="news island s01e01")
        clique[NodeId(0)].accept_metadata(record, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, record.uri, ["island"]))
        clique[NodeId(2)].add_own_query(make_query(2, "dtn://fox/z", ["desert"]))
        cand = discovery.build_metadata_candidates(clique, 0.0, False)[0]
        assert cand.own_requesters == {NodeId(1)}
        assert cand.proxy_requesters == frozenset()

    def test_proxy_requesters_only_with_foreign_flag(self, registry, clique):
        record = make_metadata(registry, name="news island s01e01")
        clique[NodeId(0)].accept_metadata(record, 0.0)
        clique[NodeId(1)].store_foreign_queries(
            NodeId(9), [make_query(9, record.uri, ["island"])]
        )
        without = discovery.build_metadata_candidates(clique, 0.0, False)[0]
        assert without.proxy_requesters == frozenset()
        with_foreign = discovery.build_metadata_candidates(clique, 0.0, True)[0]
        assert with_foreign.proxy_requesters == {NodeId(1)}

    def test_holder_is_never_a_requester(self, registry, clique):
        record = make_metadata(registry)
        clique[NodeId(0)].accept_metadata(record, 0.0)
        clique[NodeId(0)].add_own_query(make_query(0, record.uri, ["news"]))
        cand = discovery.build_metadata_candidates(clique, 0.0, False)[0]
        assert NodeId(0) not in cand.requesters

    def test_requesters_property_unions(self, registry, clique):
        record = make_metadata(registry, name="news island s01e01")
        clique[NodeId(0)].accept_metadata(record, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, record.uri, ["island"]))
        clique[NodeId(2)].store_foreign_queries(
            NodeId(9), [make_query(9, record.uri, ["news"])]
        )
        cand = discovery.build_metadata_candidates(clique, 0.0, True)[0]
        assert cand.requesters == {NodeId(1), NodeId(2)}
        assert cand.requested


class TestCooperativeRanking:
    def _candidates(self, registry, clique):
        requested = make_metadata(
            registry, uri="dtn://fox/req", name="news island s01e01", popularity=0.1
        )
        popular = make_metadata(
            registry, uri="dtn://fox/pop", name="drama desert s01e02", popularity=0.9
        )
        clique[NodeId(0)].accept_metadata(requested, 0.0)
        clique[NodeId(0)].accept_metadata(popular, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, requested.uri, ["island"]))
        return discovery.build_metadata_candidates(clique, 0.0, False)

    def test_requested_precede_popular(self, registry, clique):
        # Phase 1 (matching queries) before phase 2 (popularity), §IV-A.
        ranked = discovery.select_cooperative(self._candidates(registry, clique))
        assert ranked[0].metadata.uri == "dtn://fox/req"
        assert ranked[1].metadata.uri == "dtn://fox/pop"

    def test_more_requesters_first(self, registry, clique):
        one = make_metadata(registry, uri="dtn://fox/one", name="news island s01e01")
        two = make_metadata(registry, uri="dtn://fox/two", name="drama desert s01e02")
        clique[NodeId(0)].accept_metadata(one, 0.0)
        clique[NodeId(0)].accept_metadata(two, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, two.uri, ["desert"]))
        clique[NodeId(2)].add_own_query(make_query(2, two.uri, ["drama"]))
        clique[NodeId(1)].add_own_query(make_query(1, one.uri, ["island"]))
        ranked = discovery.select_cooperative(
            discovery.build_metadata_candidates(clique, 0.0, False)
        )
        assert ranked[0].metadata.uri == "dtn://fox/two"

    def test_popularity_breaks_ties_in_phase_two(self, registry, clique):
        low = make_metadata(registry, uri="dtn://fox/low", popularity=0.2)
        high = make_metadata(registry, uri="dtn://fox/high", popularity=0.8)
        clique[NodeId(0)].accept_metadata(low, 0.0)
        clique[NodeId(0)].accept_metadata(high, 0.0)
        ranked = discovery.select_cooperative(
            discovery.build_metadata_candidates(clique, 0.0, False)
        )
        assert ranked[0].metadata.uri == "dtn://fox/high"

    def test_own_requesters_outrank_proxy_requesters(self, registry, clique):
        own = make_metadata(registry, uri="dtn://fox/own", name="news island s01e01")
        proxy = make_metadata(registry, uri="dtn://fox/proxy", name="drama desert s01e02")
        clique[NodeId(0)].accept_metadata(own, 0.0)
        clique[NodeId(0)].accept_metadata(proxy, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, own.uri, ["island"]))
        clique[NodeId(2)].store_foreign_queries(
            NodeId(9), [make_query(9, proxy.uri, ["desert"])]
        )
        ranked = discovery.select_cooperative(
            discovery.build_metadata_candidates(clique, 0.0, True)
        )
        assert ranked[0].metadata.uri == "dtn://fox/own"


class TestTitForTatRanking:
    def test_credit_weight_dominates(self, registry, clique):
        rich = make_metadata(registry, uri="dtn://fox/rich", name="news island s01e01",
                             popularity=0.1)
        poor = make_metadata(registry, uri="dtn://fox/poor", name="drama desert s01e02",
                             popularity=0.9)
        sender = clique[NodeId(0)]
        sender.accept_metadata(rich, 0.0)
        sender.accept_metadata(poor, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, rich.uri, ["island"]))
        clique[NodeId(2)].add_own_query(make_query(2, poor.uri, ["desert"]))
        # Node 1 has earned credit with the sender; node 2 has not.
        sender.credits.reward_requested(NodeId(1))
        cands = discovery.build_metadata_candidates(clique, 0.0, False)
        ranked = discovery.select_for_sender(cands, sender, tit_for_tat=True)
        assert ranked[0].metadata.uri == "dtn://fox/rich"

    def test_zero_credit_falls_back_to_phase_and_popularity(self, registry, clique):
        requested = make_metadata(registry, uri="dtn://fox/req",
                                  name="news island s01e01", popularity=0.1)
        popular = make_metadata(registry, uri="dtn://fox/pop",
                                name="drama desert s01e02", popularity=0.9)
        sender = clique[NodeId(0)]
        sender.accept_metadata(requested, 0.0)
        sender.accept_metadata(popular, 0.0)
        clique[NodeId(1)].add_own_query(make_query(1, requested.uri, ["island"]))
        cands = discovery.build_metadata_candidates(clique, 0.0, False)
        ranked = discovery.select_for_sender(cands, sender, tit_for_tat=True)
        assert ranked[0].metadata.uri == "dtn://fox/req"

    def test_select_for_sender_filters_to_held_records(self, registry, clique):
        mine = make_metadata(registry, uri="dtn://fox/mine")
        theirs = make_metadata(registry, uri="dtn://fox/theirs")
        clique[NodeId(0)].accept_metadata(mine, 0.0)
        clique[NodeId(1)].accept_metadata(theirs, 0.0)
        cands = discovery.build_metadata_candidates(clique, 0.0, False)
        ranked = discovery.select_for_sender(cands, clique[NodeId(0)], tit_for_tat=False)
        assert [c.metadata.uri for c in ranked] == ["dtn://fox/mine"]
