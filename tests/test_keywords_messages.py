"""Unit tests for the keyword vocabulary and wire messages."""

from __future__ import annotations

import pytest

from repro.catalog.keywords import (
    PUBLISHERS,
    KeywordVocabulary,
    all_vocabulary_tokens,
    tokenize,
)
from repro.net.messages import (
    HELLO_INTERVAL,
    HelloMessage,
    MetadataMessage,
    PieceMessage,
)
from repro.types import NodeId, Uri

from conftest import make_metadata


class TestKeywordVocabulary:
    def test_deterministic_per_seed(self):
        a = KeywordVocabulary(seed=3)
        b = KeywordVocabulary(seed=3)
        assert [a.title_tokens(i) for i in range(10)] == [
            b.title_tokens(i) for i in range(10)
        ]

    def test_title_has_unique_episode_tag(self):
        vocab = KeywordVocabulary(seed=0)
        tags = {vocab.title_tokens(i)[-1] for i in range(50)}
        assert len(tags) == 50

    def test_title_tokens_structure(self):
        vocab = KeywordVocabulary(seed=0)
        tokens = vocab.title_tokens(0)
        assert len(tokens) == 4
        assert tokens[-1].startswith("s01e")

    def test_publisher_from_known_set(self):
        vocab = KeywordVocabulary(seed=0)
        for __ in range(20):
            assert vocab.publisher() in PUBLISHERS

    def test_query_tokens_include_tag(self):
        vocab = KeywordVocabulary(seed=0)
        title = vocab.title_tokens(7)
        query = vocab.query_tokens_for(title)
        assert title[-1] in query
        assert query <= frozenset(title)
        assert 2 <= len(query) <= 3

    def test_description_mentions_publisher(self):
        vocab = KeywordVocabulary(seed=0)
        title = vocab.title_tokens(0)
        assert "FOX" in vocab.description(title, "fox")

    def test_tokenize(self):
        assert tokenize("News Island  s01e01") == {"news", "island", "s01e01"}
        assert tokenize("") == frozenset()

    def test_vocabulary_token_list_sorted_unique(self):
        tokens = all_vocabulary_tokens()
        assert tokens == sorted(set(tokens))
        assert "news" in tokens


class TestMessages:
    def test_hello_interval_at_least_every_second(self):
        assert HELLO_INTERVAL <= 1.0

    def test_hello_size_grows_with_content(self):
        small = HelloMessage(
            sender=NodeId(1),
            heard=frozenset(),
            query_tokens=(),
            downloading=frozenset(),
            sent_at=0.0,
        )
        big = HelloMessage(
            sender=NodeId(1),
            heard=frozenset({NodeId(2), NodeId(3)}),
            query_tokens=(frozenset({"a", "b"}),),
            downloading=frozenset({Uri("dtn://fox/x")}),
            sent_at=0.0,
        )
        assert big.size_bytes > small.size_bytes

    def test_metadata_message_size_scales_with_checksums(self, registry):
        one = MetadataMessage(NodeId(1), make_metadata(registry, num_pieces=1), 0.0)
        many = MetadataMessage(NodeId(1), make_metadata(registry, num_pieces=10), 0.0)
        assert many.size_bytes == one.size_bytes + 9 * 20

    def test_piece_message_carries_attachment_cost(self, registry):
        record = make_metadata(registry)
        bare = PieceMessage(NodeId(1), record.uri, 0, b"x", "00", 0.0, attached=None)
        attached = PieceMessage(NodeId(1), record.uri, 0, b"x", "00", 0.0, attached=record)
        assert attached.size_bytes > bare.size_bytes
        assert bare.size_bytes >= 256 * 1024
