"""Runtime sanitizer: hash-seed pinning, RNG guard, fingerprints."""

from __future__ import annotations

import random

import pytest

from repro.detlint.hashseed import (
    DEFAULT_HASH_SEED,
    HASH_SEED_ENV,
    UNPINNED,
    ensure_hash_seed,
    hash_seed_value,
)
from repro.detlint.sanitizer import (
    DETCHECK_ENV,
    DeterminismError,
    GlobalRngGuard,
    assert_hash_seed_pinned,
    checked_run,
    detcheck_enabled,
    fingerprint_summary,
    maybe_checked_run,
    result_fingerprint,
    verify_recorded_hash_seed,
)
from repro.exec import RunSpec, TraceSpec, execute, run_many
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace


@pytest.fixture
def tiny_trace():
    return generate_dieselnet_trace(DieselNetConfig(num_buses=6, num_days=1), seed=0)


@pytest.fixture
def tiny_config():
    return SimulationConfig(files_per_day=3, num_days=1, seed=0)


class TestHashSeed:
    def test_export_when_unset(self, monkeypatch):
        monkeypatch.delenv(HASH_SEED_ENV, raising=False)
        assert ensure_hash_seed() == DEFAULT_HASH_SEED
        import os

        assert os.environ[HASH_SEED_ENV] == DEFAULT_HASH_SEED

    def test_existing_pin_is_kept(self, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "7")
        assert ensure_hash_seed() == "7"
        assert hash_seed_value() == 7

    def test_random_is_unpinned(self, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "random")
        assert hash_seed_value() == UNPINNED
        with pytest.raises(DeterminismError, match="hash"):
            assert_hash_seed_pinned()

    def test_assert_pins_when_unset(self, monkeypatch):
        monkeypatch.delenv(HASH_SEED_ENV, raising=False)
        assert assert_hash_seed_pinned() == 0


class TestDetcheckEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy(self, value):
        assert detcheck_enabled({DETCHECK_ENV: value})

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_falsy(self, value):
        assert not detcheck_enabled({DETCHECK_ENV: value})

    def test_unset(self):
        assert not detcheck_enabled({})


class TestFingerprint:
    def test_identical_runs_identical_fingerprints(self, tiny_trace, tiny_config):
        a = Simulation(tiny_trace, tiny_config).run()
        b = Simulation(tiny_trace, tiny_config).run()
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_seed_changes_fingerprint(self, tiny_trace, tiny_config):
        a = Simulation(tiny_trace, tiny_config).run()
        b = Simulation(tiny_trace, SimulationConfig(files_per_day=3, num_days=1, seed=1)).run()
        assert result_fingerprint(a) != result_fingerprint(b)

    def test_wall_clock_timers_are_ignored(self, tiny_trace, tiny_config):
        result = Simulation(tiny_trace, tiny_config).run()
        reference = result_fingerprint(result)
        result.extra["perf.time_us.hellos"] = 123456.0
        assert result_fingerprint(result) == reference
        result.extra["events"] += 1
        assert result_fingerprint(result) != reference


class TestGlobalRngGuard:
    def test_clean_simulation_passes(self, tiny_trace, tiny_config, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "0")
        result = Simulation(tiny_trace, tiny_config).run(event_observer=GlobalRngGuard())
        assert result.extra["events"] > 0

    def test_global_draw_is_caught(self):
        guard = GlobalRngGuard()
        guard(0.0, 0)  # idle stream: fine
        random.random()
        with pytest.raises(DeterminismError, match="event #3"):
            guard(12.5, 3)

    def test_private_rng_is_invisible(self):
        guard = GlobalRngGuard()
        random.Random(7).random()
        guard(1.0, 1)


class TestRecordedHashSeed:
    def test_counter_matches_environment(self, tiny_trace, tiny_config, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "0")
        result = Simulation(tiny_trace, tiny_config).run()
        assert result.counters["detcheck.pythonhashseed"] == 0
        verify_recorded_hash_seed(result)

    def test_mismatch_raises(self, tiny_trace, tiny_config, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "0")
        result = Simulation(tiny_trace, tiny_config).run()
        monkeypatch.setenv(HASH_SEED_ENV, "5")
        with pytest.raises(DeterminismError, match="environment"):
            verify_recorded_hash_seed(result)


class TestCheckedRun:
    def test_returns_plain_result(self, tiny_trace, tiny_config, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "0")
        checked = checked_run(tiny_trace, tiny_config)
        plain = Simulation(tiny_trace, tiny_config).run()
        assert result_fingerprint(checked) == result_fingerprint(plain)

    def test_rejects_zero_runs(self, tiny_trace, tiny_config):
        with pytest.raises(ValueError):
            checked_run(tiny_trace, tiny_config, runs=0)

    def test_maybe_checked_run_env_gate(self, tiny_trace, tiny_config, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "0")
        monkeypatch.delenv(DETCHECK_ENV, raising=False)
        plain = maybe_checked_run(tiny_trace, tiny_config)
        monkeypatch.setenv(DETCHECK_ENV, "1")
        sanitized = maybe_checked_run(tiny_trace, tiny_config)
        assert result_fingerprint(plain) == result_fingerprint(sanitized)

    def test_summary_payload(self, tiny_trace, tiny_config, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "0")
        result = checked_run(tiny_trace, tiny_config)
        summary = fingerprint_summary(result)
        assert summary["fingerprint"] == result_fingerprint(result)
        assert summary["pythonhashseed"] == 0


class TestKernelIntegration:
    def spec(self, seed=0):
        return RunSpec(
            trace=TraceSpec.of(
                generate_dieselnet_trace, DieselNetConfig(num_buses=6, num_days=1), 0
            ),
            config=SimulationConfig(files_per_day=3, num_days=1, seed=seed),
        )

    def test_execute_exports_hash_seed(self, monkeypatch):
        import os

        monkeypatch.delenv(HASH_SEED_ENV, raising=False)
        result = execute(self.spec())
        assert os.environ[HASH_SEED_ENV] == DEFAULT_HASH_SEED
        assert result.result.counters["detcheck.pythonhashseed"] == 0

    def test_run_many_exports_hash_seed(self, monkeypatch):
        import os

        monkeypatch.delenv(HASH_SEED_ENV, raising=False)
        results = run_many([self.spec(0), self.spec(1)], jobs=1)
        assert os.environ[HASH_SEED_ENV] == DEFAULT_HASH_SEED
        for run in results:
            assert run.result.counters["detcheck.pythonhashseed"] == 0

    def test_execute_honours_detcheck_env(self, monkeypatch):
        monkeypatch.setenv(HASH_SEED_ENV, "0")
        monkeypatch.setenv(DETCHECK_ENV, "1")
        sanitized = execute(self.spec())
        monkeypatch.delenv(DETCHECK_ENV)
        plain = execute(self.spec())
        assert result_fingerprint(sanitized.result) == result_fingerprint(plain.result)
