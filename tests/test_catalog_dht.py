"""DHT-sharded catalog, bloom summaries, and flat/sharded equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.dht import (
    KBucketTable,
    ShardRouter,
    ShardedMetadataServer,
    sha1_key,
    xor_distance,
)
from repro.catalog.expiry import ExpiryHeap
from repro.catalog.metadata import PublisherRegistry
from repro.catalog.popularity import PopularityTracker
from repro.catalog.server import MetadataServer
from repro.net.bloom import BloomFilter, bloom_parameters, item_hashes
from repro.perf import PerfRecorder
from repro.types import DAY, NodeId, Uri

from conftest import make_metadata


# -- bloom filter ------------------------------------------------------------------


def test_bloom_no_false_negatives():
    items = [f"dtn://fox/f{i:06d}" for i in range(500)]
    bloom = BloomFilter.from_items(items, fpr=0.01, seed=7)
    assert all(item in bloom for item in items)


def test_bloom_deterministic_bits():
    items = {f"dtn://abc/f{i}" for i in range(100)}
    a = BloomFilter.from_items(sorted(items), fpr=0.02, seed=3)
    b = BloomFilter.from_items(sorted(items, reverse=True), fpr=0.02, seed=3)
    assert a.to_bytes() == b.to_bytes()  # insertion order is irrelevant
    c = BloomFilter.from_items(sorted(items), fpr=0.02, seed=4)
    assert a.to_bytes() != c.to_bytes()  # the seed is not


def test_bloom_fpr_knob_sizes_filter():
    loose_bits, __ = bloom_parameters(1000, 0.1)
    tight_bits, __ = bloom_parameters(1000, 0.001)
    assert tight_bits > loose_bits
    with pytest.raises(ValueError):
        bloom_parameters(10, 1.5)
    with pytest.raises(ValueError):
        bloom_parameters(-1, 0.01)


def test_bloom_observed_fpr_near_target():
    members = [f"in:{i}" for i in range(2000)]
    bloom = BloomFilter.from_items(members, fpr=0.01, seed=0)
    probes = [f"out:{i}" for i in range(5000)]
    observed = sum(1 for p in probes if p in bloom) / len(probes)
    assert observed < 0.03  # ~1% target with slack


def test_bloom_contains_hashes_matches_contains():
    bloom = BloomFilter.from_items([f"u{i}" for i in range(50)], fpr=0.05, seed=9)
    for item in ["u0", "u49", "missing-a", "missing-b"]:
        assert (item in bloom) == bloom.contains_hashes(item_hashes(item, 9))


def test_bloom_size_bytes_counts_bit_array():
    bloom = BloomFilter(100, fpr=0.01, seed=0)
    assert bloom.size_bytes == (bloom.num_bits + 7) // 8


# -- expiry heap -------------------------------------------------------------------


def test_expiry_heap_stale_entries_dropped():
    heap = ExpiryHeap()
    live = {"a": 5.0, "b": 20.0}
    heap.push("a", 5.0)
    heap.push("b", 5.0)  # first publish of b...
    heap.push("b", 20.0)  # ...then republished with a longer TTL
    heap.push("c", 5.0)  # stale: c no longer exists
    assert heap.pop_due(10.0, live.get) == ["a"]
    assert heap.pop_due(30.0, live.get) == ["b"]


def test_expiry_heap_duplicate_pushes_report_once():
    heap = ExpiryHeap()
    heap.push("a", 5.0)
    heap.push("a", 5.0)
    assert heap.pop_due(10.0, {"a": 5.0}.get) == ["a"]


# -- k-buckets and routing ---------------------------------------------------------


def test_kbucket_table_is_insertion_order_independent():
    owner = sha1_key("owner")
    peers = [sha1_key(f"peer:{i}") for i in range(40)]
    a = KBucketTable(owner, k=4)
    b = KBucketTable(owner, k=4)
    for peer in peers:
        a.add(peer)
    for peer in reversed(peers):
        b.add(peer)
    for key in (sha1_key("x"), sha1_key("y"), owner):
        assert a.closest(key, 3) == b.closest(key, 3)
    assert len(a) == len(b)


def test_kbucket_never_stores_owner():
    owner = sha1_key("owner")
    table = KBucketTable(owner)
    table.add(owner)
    assert len(table) == 0


def test_router_publish_lookup_agree_and_cover_all_keys():
    router = ShardRouter(8)
    for i in range(200):
        key = sha1_key(f"uri:dtn://fox/f{i}")
        index, hops = router.route(key)
        assert 0 <= index < 8
        assert router.route(key) == (index, hops)  # memoized, stable


def test_router_spreads_keys_across_shards():
    router = ShardRouter(8)
    hit = {router.shard_for_uri(f"dtn://fox/f{i:06d}")[0] for i in range(500)}
    assert len(hit) == 8  # every shard owns part of the keyspace


def test_router_single_shard_trivial():
    router = ShardRouter(1)
    assert router.route(sha1_key("anything")) == (0, 0)
    with pytest.raises(ValueError):
        ShardRouter(0)


def test_xor_distance_metric_axioms():
    a, b = sha1_key("a"), sha1_key("b")
    assert xor_distance(a, a) == 0
    assert xor_distance(a, b) == xor_distance(b, a)


# -- sharded server vs flat server -------------------------------------------------


def _fill(server, registry, n=20, ttl=3 * DAY):
    records = []
    for i in range(n):
        record = make_metadata(
            registry,
            uri=f"dtn://fox/f{i:06d}",
            name=f"news item{i % 7} shard{i % 3}",
            popularity=(i % 10) / 10.0,
            created_at=float(i % 4),
            ttl=ttl,
        )
        server.publish(record)
        records.append(record)
    return records


def test_sharded_server_matches_flat_scripted(registry):
    flat = MetadataServer()
    sharded = ShardedMetadataServer(4)
    _fill(flat, registry)
    _fill(sharded, registry)
    assert len(sharded) == len(flat)
    now = 1.5 * DAY
    for tokens in [
        frozenset({"news"}),
        frozenset({"news", "item1"}),
        frozenset({"item2", "shard0"}),
        frozenset({"absent"}),
        frozenset(),
    ]:
        assert sharded.search(tokens, now) == flat.search(tokens, now)
        assert sharded.search(tokens, now, limit=3) == flat.search(tokens, now, limit=3)
    exclude = frozenset({Uri("dtn://fox/f000003")})
    assert sharded.top_popular(now, 5) == flat.top_popular(now, 5)
    assert sharded.top_popular(now, 5, exclude) == flat.top_popular(now, 5, exclude)
    assert sharded.all_records(now) == flat.all_records(now)
    assert sharded.all_records() == flat.all_records()
    late = 10 * DAY
    assert sharded.expire(late) == flat.expire(late)
    assert len(sharded) == len(flat) == 0


def test_sharded_server_get_contains_and_counters(registry):
    perf = PerfRecorder()
    sharded = ShardedMetadataServer(4, perf=perf)
    records = _fill(sharded, registry, n=10)
    for record in records:
        assert record.uri in sharded
        assert sharded.get(record.uri) == record
    assert sharded.get(Uri("dtn://fox/nope")) is None
    counters = perf.as_counters()
    assert counters["perf.catalog.shard_lookups"] > 0
    assert sum(sharded.shard_sizes()) == len(sharded)


def test_sharded_refresh_skips_unchanged(registry):
    tracker = PopularityTracker(population=10)
    sharded = ShardedMetadataServer(4, tracker)
    flat = MetadataServer(tracker)
    _fill(sharded, registry)
    _fill(flat, registry)
    now = 1.0 * DAY
    tracker.record_request(Uri("dtn://fox/f000001"), NodeId(1), now - 1.0)
    sharded.refresh_popularities(now)
    flat.refresh_popularities(now)
    assert sharded.all_records() == flat.all_records()


def test_sharded_ranked_cache_invalidated_by_publish(registry):
    sharded = ShardedMetadataServer(2)
    _fill(sharded, registry, n=5)
    now = 1.0
    first = sharded.top_popular(now, 3)
    newcomer = make_metadata(
        registry, uri="dtn://fox/fresh1", name="fresh news", popularity=0.99
    )
    sharded.publish(newcomer)
    assert sharded.top_popular(now, 3)[0] == newcomer
    assert first[0] != newcomer


# -- simulation wiring -------------------------------------------------------------


def _diesel():
    from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace

    return generate_dieselnet_trace(DieselNetConfig(num_buses=12, num_days=4), seed=3)


def _fingerprint(trace, **overrides):
    from repro.detlint.sanitizer import result_fingerprint
    from repro.sim.runner import Simulation, SimulationConfig

    config = SimulationConfig(**{"seed": 1, "files_per_day": 20, **overrides})
    return result_fingerprint(Simulation(trace, config).run())


def test_sharded_run_fingerprint_identical_to_flat():
    trace = _diesel()
    flat = _fingerprint(trace, catalog_shards=1)
    assert _fingerprint(trace, catalog_shards=6) == flat
    assert _fingerprint(trace, catalog_shards=6, core="array") == flat


def test_bloom_run_object_array_parity_and_counters():
    from repro.sim.runner import Simulation, SimulationConfig

    trace = _diesel()
    kwargs = dict(seed=1, files_per_day=20, hello_blooms=True, bloom_fpr=0.05)
    obj = Simulation(trace, SimulationConfig(core="object", **kwargs)).run()
    arr = Simulation(trace, SimulationConfig(core="array", **kwargs)).run()
    from repro.detlint.sanitizer import result_fingerprint

    assert result_fingerprint(obj) == result_fingerprint(arr)
    assert obj.extra["perf.catalog.bloom_screens"] > 0
    hits = obj.extra.get("perf.catalog.bloom_hits", 0)
    assert hits >= obj.extra.get("perf.catalog.bloom_false_positives", 0)


def test_config_validates_catalog_knobs():
    from repro.sim.runner import SimulationConfig

    with pytest.raises(ValueError):
        SimulationConfig(catalog_shards=0)
    with pytest.raises(ValueError):
        SimulationConfig(bloom_fpr=0.0)
    with pytest.raises(ValueError):
        SimulationConfig(bloom_fpr=1.0)
    protocol = SimulationConfig(hello_blooms=True, bloom_fpr=0.05, seed=9).protocol_config()
    assert protocol.hello_blooms and protocol.bloom_fpr == 0.05
    assert protocol.bloom_seed == 9


def test_hello_summary_cached_and_attached(registry):
    from repro.core.node import NodeState
    from repro.net.hello import build_hello

    state = NodeState(node=NodeId(1), registry=registry)
    record = make_metadata(registry)
    state.metadata.add(record, now=0.0)
    summary = state.hello_summary(0.01, seed=5)
    assert record.uri in summary
    assert state.hello_summary(0.01, seed=5) is summary  # memoized
    assert state.hello_summary(0.02, seed=5) is not summary  # knob change
    state.metadata.add(
        make_metadata(registry, uri="dtn://fox/other", name="other news"), now=0.0
    )
    assert state.hello_summary(0.01, seed=5) is not summary  # store mutated
    hello = build_hello(state, 1.0, include_foreign_queries=False, summary=summary)
    bare = build_hello(state, 1.0, include_foreign_queries=False)
    assert hello.summary is summary
    assert hello.size_bytes == bare.size_bytes + summary.size_bytes


@settings(max_examples=40, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=9),
    spec=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),  # uri suffix
            st.integers(min_value=0, max_value=4),  # name-shape bucket
            st.integers(min_value=0, max_value=9),  # popularity decile
            st.integers(min_value=1, max_value=4),  # ttl days
        ),
        min_size=1,
        max_size=25,
    ),
    probe_day=st.floats(min_value=0.0, max_value=6.0),
)
def test_sharded_is_result_identical_to_flat(shards, spec, probe_day):
    registry = PublisherRegistry(master_seed=42)
    registry.register("fox")
    flat = MetadataServer()
    sharded = ShardedMetadataServer(shards)
    for suffix, shape, decile, ttl_days in spec:
        record = make_metadata(
            registry,
            uri=f"dtn://fox/f{suffix:06d}",
            name=f"news tag{shape} group{suffix % 3}",
            popularity=decile / 10.0,
            ttl=ttl_days * DAY,
        )
        flat.publish(record)
        sharded.publish(record)
    now = probe_day * DAY
    assert sharded.expire(now) == flat.expire(now)
    assert len(sharded) == len(flat)
    for tokens in [
        frozenset({"news"}),
        frozenset({"tag1"}),
        frozenset({"news", "group2"}),
    ]:
        assert sharded.search(tokens, now) == flat.search(tokens, now)
    assert sharded.top_popular(now, 7) == flat.top_popular(now, 7)
    assert sharded.all_records(now) == flat.all_records(now)
