"""Equivalence suite for the array-native contact core (``core="array"``).

The numpy core must be *bitwise-equivalent* to the reference object
core: not merely the same delivery ratios, but the same result
fingerprint — which covers every deterministic counter and, through the
scheduler, the iteration order of every frozenset the builders emit.
The suite drives both cores across randomized cliques, randomized
synthetic traces, protocol variants and fault plans, and also covers
the guard rails: coherence fallback to the object path and the
informative error when numpy is missing.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import arraycore, discovery, download
from repro.core.arraycore import ArrayCliqueView
from repro.core.arrays import HAVE_NUMPY, MAX_PIECE_BITS, NodeStateArrays
from repro.core.mbt import ProtocolVariant, SchedulingMode
from repro.core.node import NodeState
from repro.core.strategies import AdversaryPlan
from repro.detlint.sanitizer import result_fingerprint
from repro.faults import FaultPlan
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.base import Contact, ContactTrace
from repro.types import DAY, NodeId

from conftest import make_metadata, make_node, make_query, tiny_trace

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="array core needs numpy")

VOCAB = ("news", "island", "desert", "finale", "sports", "weather")


def _tokens_of(rng: random.Random) -> str:
    return " ".join(rng.sample(VOCAB, rng.randint(2, 4)))


def _build_clique(seed: int) -> Dict[NodeId, NodeState]:
    """Randomized clique (mirrors test_indexed_contact_path's builder).

    Registry creation is inside so two calls with the same seed yield
    two *independent* but content-identical cliques — one for each core.
    """
    from repro.catalog.metadata import PublisherRegistry

    registry = PublisherRegistry(master_seed=42)
    registry.register("fox")
    rng = random.Random(seed)
    n_nodes = rng.randint(2, 5)
    n_files = rng.randint(3, 8)
    files = []
    for i in range(n_files):
        files.append(
            make_metadata(
                registry,
                uri=f"dtn://fox/f{i:06d}",
                name=_tokens_of(rng),
                num_pieces=rng.randint(1, 4),
                popularity=rng.choice((0.1, 0.3, 0.5, 0.7, 0.9)),
                ttl=rng.choice((10.0, 1000.0)),
            )
        )
    states: Dict[NodeId, NodeState] = {}
    for i in range(n_nodes):
        state = make_node(registry, node=i, metadata_capacity=rng.choice((None, None, 3)))
        for record in rng.sample(files, rng.randint(0, n_files)):
            state.accept_metadata(record, 0.0)
        for _ in range(rng.randint(0, 2)):
            target = rng.choice(files)
            state.add_own_query(
                make_query(i, target.uri, rng.sample(sorted(target.token_set), 1))
            )
        if rng.random() < 0.5:
            target = rng.choice(files)
            state.store_foreign_queries(
                NodeId(100 + i),
                [make_query(100 + i, target.uri, rng.sample(sorted(target.token_set), 1))],
            )
        for record in rng.sample(files, rng.randint(0, 2)):
            for index in range(record.num_pieces):
                if rng.random() < 0.6:
                    state.pieces.add_unverified(record.uri, index)
        states[NodeId(i)] = state
    return states


class TestBuilderEquivalence:
    """Array builders equal the object builders, layout included."""

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), include_foreign=st.booleans())
    def test_metadata_candidates(self, seed, include_foreign):
        states_obj = _build_clique(seed)
        states_arr = _build_clique(seed)
        now = 5.0 if seed % 2 else 50.0
        soa = NodeStateArrays.adopt(states_arr)
        assert soa.coherent
        view = ArrayCliqueView(soa, states_arr, now)
        arr = arraycore.build_metadata_candidates(view, states_arr, now, include_foreign)
        obj = discovery.build_metadata_candidates(states_obj, now, include_foreign)
        assert set(arr) == set(obj)
        assert discovery.select_cooperative(arr) == discovery.select_cooperative(obj)
        # Layout parity: equal frozensets must also *iterate* equally —
        # broadcast receiver order and tit-for-tat weight sums depend
        # on it (see the equivalence contract in repro.core.arraycore).
        by_uri = {c.metadata.uri: c for c in obj}
        for cand in arr:
            twin = by_uri[cand.metadata.uri]
            assert list(cand.missing) == list(twin.missing)
            assert list(cand.own_requesters) == list(twin.own_requesters)
            assert list(cand.proxy_requesters) == list(twin.proxy_requesters)
            assert cand.metadata == twin.metadata

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_piece_candidates(self, seed):
        states_obj = _build_clique(seed)
        states_arr = _build_clique(seed)
        now = 5.0 if seed % 2 else 50.0
        soa = NodeStateArrays.adopt(states_arr)
        view = ArrayCliqueView(soa, states_arr, now)
        arr = arraycore.build_piece_candidates(view, states_arr, now)
        obj = download.build_piece_candidates(states_obj, now)
        assert set(arr) == set(obj)
        assert download.select_cooperative(arr) == download.select_cooperative(obj)
        by_key = {(c.metadata.uri, c.index): c for c in obj}
        for cand in arr:
            twin = by_key[(cand.metadata.uri, cand.index)]
            assert list(cand.missing) == list(twin.missing)
            assert list(cand.requesters) == list(twin.requesters)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_wanted_uris_and_counters(self, seed):
        """The accelerated wanted-set matches, memo counters included."""
        states_obj = _build_clique(seed)
        states_arr = _build_clique(seed)
        NodeStateArrays.adopt(states_arr)
        now = 5.0 if seed % 2 else 50.0
        for node, accel_state in states_arr.items():
            plain_state = states_obj[node]
            assert accel_state.wanted_uris(now) == plain_state.wanted_uris(now)
            assert accel_state.wanted_cache_misses == plain_state.wanted_cache_misses
            assert accel_state.wanted_cache_hits == plain_state.wanted_cache_hits
            assert (
                accel_state.metadata.index_queries == plain_state.metadata.index_queries
            )


def _random_trace(rng: random.Random) -> ContactTrace:
    n_nodes = rng.randint(4, 8)
    contacts = []
    for _ in range(rng.randint(15, 35)):
        start = rng.uniform(0.0, 2 * DAY)
        size = rng.randint(2, min(4, n_nodes))
        members = frozenset(NodeId(i) for i in rng.sample(range(n_nodes), size))
        contacts.append(Contact(start, start + rng.uniform(30.0, 600.0), members))
    contacts.sort(key=lambda c: (c.start, c.end, sorted(c.members)))
    return ContactTrace(contacts, name="array-eq")


#: Every non-honest strategy, for adversarial equivalence draws.
ADVERSARIAL = ("exploiter", "free_rider", "polluter", "under_reporter")


def _random_config(rng: random.Random) -> SimulationConfig:
    faults = None
    if rng.random() < 0.4:
        faults = FaultPlan(
            loss_rate=rng.choice((0.0, 0.2)),
            churn_rate=rng.choice((0.0, 0.05)),
            seed=rng.randint(0, 99),
        )
    adversaries = None
    if rng.random() < 0.4:
        names = rng.sample(ADVERSARIAL, rng.randint(1, 3))
        adversaries = AdversaryPlan(
            fraction=rng.choice((0.25, 0.5)),
            mix=tuple(sorted((name, 1.0) for name in names)),
            seed=rng.randint(0, 99),
        )
    kwargs = dict(
        internet_access_fraction=rng.choice((0.0, 0.4, 1.0)),
        files_per_day=rng.randint(4, 12),
        ttl_days=rng.choice((1.0, 3.0)),
        metadata_per_contact=rng.randint(1, 4),
        files_per_contact=rng.randint(1, 4),
        pieces_per_file=rng.choice((1, 3)),
        variant=rng.choice(list(ProtocolVariant)),
        tit_for_tat=rng.random() < 0.5,
        broadcast=rng.random() < 0.7,
        metadata_capacity=rng.choice((None, None, 8)),
        selection_policy=rng.choice(("all", "best")),
        credit_policy=rng.choice(("plain", "reputation")),
        num_days=2,
        seed=rng.randint(0, 999),
    )
    if faults is not None:
        kwargs["faults"] = faults
    if adversaries is not None:
        kwargs["adversaries"] = adversaries
    return SimulationConfig(**kwargs)


class TestFingerprintEquivalence:
    """Full runs: ``core="array"`` must reproduce the exact fingerprint."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_traces_and_configs(self, seed):
        rng = random.Random(seed)
        trace = _random_trace(rng)
        config = _random_config(rng)
        obj = Simulation(trace, replace(config, core="object")).run()
        arr = Simulation(trace, replace(config, core="array")).run()
        assert result_fingerprint(obj) == result_fingerprint(arr)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        name=st.sampled_from(ADVERSARIAL),
        policy=st.sampled_from(("plain", "reputation")),
    )
    def test_every_strategy_matches(self, seed, name, policy):
        """Each strategy alone, under both credit policies: exact parity.

        Strategy effects run on the shared scheduler layer after the
        per-core builders, so adversarial runs must stay bitwise
        equivalent between cores just like honest ones.
        """
        rng = random.Random(seed)
        trace = _random_trace(rng)
        config = replace(
            _random_config(rng),
            adversaries=AdversaryPlan(fraction=0.5, mix=((name, 1.0),), seed=seed % 7),
            credit_policy=policy,
            tit_for_tat=True,
        )
        obj = Simulation(trace, replace(config, core="object")).run()
        arr = Simulation(trace, replace(config, core="array")).run()
        assert result_fingerprint(obj) == result_fingerprint(arr)

    def test_dieselnet_fast_preset(self):
        from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace

        trace = dieselnet_trace("fast")
        config = dieselnet_base_config()
        obj = Simulation(trace, replace(config, core="object")).run()
        sim = Simulation(trace, replace(config, core="array"))
        arr = sim.run()
        assert sim.arrays is not None and sim.arrays.coherent
        assert result_fingerprint(obj) == result_fingerprint(arr)

    def test_oversized_files_fall_back_coherently(self):
        """>64-piece files flip the arrays incoherent; results still match."""
        trace = tiny_trace()
        config = SimulationConfig(
            files_per_day=4, pieces_per_file=MAX_PIECE_BITS + 6, num_days=2, seed=1
        )
        obj = Simulation(trace, replace(config, core="object")).run()
        sim = Simulation(trace, replace(config, core="array"))
        arr = sim.run()
        assert sim.arrays is not None and not sim.arrays.coherent
        assert "pieces" in sim.arrays.incoherence_reason
        assert result_fingerprint(obj) == result_fingerprint(arr)


def _counters_sans_sched(result) -> Dict[str, float]:
    """Counters minus the fingerprint-ignored perf namespaces.

    ``perf.sched.*`` records *which implementation ran* and
    ``perf.time_us.*`` records wall time — both legitimately differ
    between the kernel and the object loops. Everything else must not.
    """
    from repro.detlint.sanitizer import FINGERPRINT_IGNORED_PREFIXES

    return {
        key: value
        for key, value in result.counters.items()
        if not key.startswith(FINGERPRINT_IGNORED_PREFIXES)
    }


class TestSchedulingKernelEquivalence:
    """The vectorized scheduling kernel vs the reference object loops.

    Fingerprint parity between ``core="object"`` and ``core="array"``
    (which dispatches to the kernel), and between kernel-on and
    kernel-off under ``core="array"``, across both scheduling modes,
    both credit policies, adversary plans and budget sizes.
    """

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        mode=st.sampled_from(list(SchedulingMode)),
        policy=st.sampled_from(("plain", "reputation")),
        budget=st.sampled_from((1, 3, 8)),
    )
    def test_mode_policy_budget_grid(self, seed, mode, policy, budget):
        rng = random.Random(seed)
        trace = _random_trace(rng)
        config = replace(
            _random_config(rng),
            scheduling=mode,
            credit_policy=policy,
            metadata_per_contact=budget,
            files_per_contact=budget,
        )
        obj = Simulation(trace, replace(config, core="object")).run()
        arr = Simulation(trace, replace(config, core="array")).run()
        assert result_fingerprint(obj) == result_fingerprint(arr)
        assert _counters_sans_sched(obj) == _counters_sans_sched(arr)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), mode=st.sampled_from(list(SchedulingMode)))
    def test_kernel_off_matches_kernel_on(self, seed, mode):
        """Flipping SCHED_KERNEL_ENABLED must not change any result.

        This is the seam bench_scheduler measures across, so its two
        sides have to be interchangeable, not just close.
        """
        rng = random.Random(seed)
        trace = _random_trace(rng)
        config = replace(_random_config(rng), scheduling=mode, core="array")
        on = Simulation(trace, config).run()
        assert arraycore.SCHED_KERNEL_ENABLED
        arraycore.SCHED_KERNEL_ENABLED = False
        try:
            off = Simulation(trace, config).run()
        finally:
            arraycore.SCHED_KERNEL_ENABLED = True
        assert result_fingerprint(on) == result_fingerprint(off)
        assert _counters_sans_sched(on) == _counters_sans_sched(off)
        # The sched counters are how the two runs *should* differ.
        assert off.counters.get("perf.sched.meta_vectorized", 0) == 0
        if on.counters.get("perf.sched.meta_vectorized", 0):
            assert off.counters.get("perf.sched.meta_object", 0) > 0

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        name=st.sampled_from(ADVERSARIAL),
        mode=st.sampled_from(list(SchedulingMode)),
    )
    def test_adversaries_under_both_modes(self, seed, name, mode):
        """Strategy gating (turns_skipped, serves_pieces) runs inside the
        kernel's cyclic loop — adversarial runs must stay bitwise equal."""
        rng = random.Random(seed)
        trace = _random_trace(rng)
        config = replace(
            _random_config(rng),
            scheduling=mode,
            adversaries=AdversaryPlan(fraction=0.5, mix=((name, 1.0),), seed=seed % 5),
            tit_for_tat=True,
            credit_policy="reputation",
        )
        obj = Simulation(trace, replace(config, core="object")).run()
        arr = Simulation(trace, replace(config, core="array")).run()
        assert result_fingerprint(obj) == result_fingerprint(arr)

    def test_kernel_actually_runs_on_preset(self):
        """Guard against silently testing the fallback: the dieselnet
        preset under core="array" must dispatch to the kernel."""
        from repro.experiments.workloads import dieselnet_base_config, dieselnet_trace

        trace = dieselnet_trace("fast")
        config = replace(dieselnet_base_config(), core="array")
        result = Simulation(trace, config).run()
        assert result.counters.get("perf.sched.meta_vectorized", 0) > 0
        assert result.counters.get("perf.sched.piece_vectorized", 0) > 0
        assert result.counters.get("perf.sched.meta_object", 0) == 0
        assert result.counters.get("perf.sched.piece_object", 0) == 0


def _batched_trace(seed: int) -> ContactTrace:
    """Random trace where many contacts share the same start instant."""
    rng = random.Random(seed)
    n_nodes = 8
    contacts = []
    for _ in range(rng.randint(4, 8)):
        start = round(rng.uniform(0.0, 2 * DAY), 1)
        for _ in range(rng.randint(1, 4)):  # same-instant burst
            size = rng.randint(2, 4)
            members = frozenset(NodeId(i) for i in rng.sample(range(n_nodes), size))
            contacts.append(Contact(start, start + rng.uniform(30.0, 600.0), members))
    contacts.sort(key=lambda c: (c.start, c.end, sorted(c.members)))
    return ContactTrace(contacts, name="array-batch")


class TestContactBatching:
    """Same-instant contacts dispatch as one batch event per instant."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_batching_is_bitwise_neutral(self, seed):
        rng = random.Random(seed)
        trace = _batched_trace(seed)
        config = _random_config(rng)
        obj = Simulation(trace, replace(config, core="object")).run()
        arr = Simulation(trace, replace(config, core="array")).run()
        assert result_fingerprint(obj) == result_fingerprint(arr)

    def test_batches_fewer_than_contacts(self):
        trace = _batched_trace(3)
        starts = [c.start for c in trace]
        distinct = len(set(starts))
        config = SimulationConfig(files_per_day=6, num_days=2, seed=0, core="array")
        result = Simulation(trace, config).run()
        counters = result.counters
        assert counters["contact_batches"] == counters["events_contact"]
        # Bursts collapse: one event per distinct instant, not per contact.
        assert counters["events_contact"] <= distinct
        assert counters["contacts_processed"] >= counters["events_contact"]
        if len(starts) > distinct:
            # The batch cache saved at least one liveness recompute.
            assert counters.get("perf.sched.live_reuses", 0) > 0


class TestCoherenceGuards:
    def test_conflicting_copy_identity_marks_incoherent(self, registry):
        a = make_node(registry, node=0)
        b = make_node(registry, node=1)
        states = {NodeId(0): a, NodeId(1): b}
        soa = NodeStateArrays.adopt(states)
        uri = "dtn://fox/f000001"
        a.accept_metadata(make_metadata(registry, uri=uri, ttl=1000.0), 0.0)
        assert soa.coherent
        b.accept_metadata(make_metadata(registry, uri=uri, ttl=2000.0), 0.0)
        assert not soa.coherent
        assert uri in soa.incoherence_reason

    def test_oversized_bitmap_marks_incoherent(self, registry):
        state = make_node(registry, node=0)
        soa = NodeStateArrays.adopt({NodeId(0): state})
        state.pieces.add_unverified("dtn://fox/f000009", MAX_PIECE_BITS + 1)
        assert not soa.coherent


class TestNumpyGuard:
    def test_missing_numpy_raises_informative_error(self, monkeypatch):
        import repro.core.arrays as arrays_module

        monkeypatch.setattr(arrays_module, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError, match="core='object'"):
            NodeStateArrays([NodeId(0)])
        with pytest.raises(RuntimeError, match="numpy"):
            Simulation(tiny_trace(), SimulationConfig(core="array"))

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError, match="core"):
            SimulationConfig(core="vector")
