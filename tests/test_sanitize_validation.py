"""Tests for trace sanitization and the validation harness."""

from __future__ import annotations

import pytest

from repro.experiments.validation import Claim, format_report
from repro.traces.base import Contact, ContactTrace
from repro.traces.sanitize import (
    clip,
    drop_short_contacts,
    merge_overlapping,
    relabel_nodes,
    sanitize,
    shift_to_zero,
)
from repro.types import NodeId

from conftest import clique_contact, pair_contact


class TestShiftToZero:
    def test_translates_all_times(self):
        trace = ContactTrace(
            [pair_contact(1000.0, 1010.0, 0, 1), pair_contact(2000.0, 2020.0, 1, 2)]
        )
        zeroed = shift_to_zero(trace)
        assert zeroed.start_time == 0.0
        assert zeroed[1].start == 1000.0
        assert zeroed[0].duration == 10.0

    def test_empty_trace_unchanged(self):
        trace = ContactTrace([])
        assert shift_to_zero(trace) is trace


class TestMergeOverlapping:
    def test_merges_flapping_contacts(self):
        trace = ContactTrace(
            [
                pair_contact(0.0, 10.0, 0, 1),
                pair_contact(12.0, 20.0, 0, 1),  # 2 s flap gap
                pair_contact(100.0, 110.0, 0, 1),
            ]
        )
        merged = merge_overlapping(trace, gap_tolerance=5.0)
        assert len(merged) == 2
        assert merged[0].start == 0.0 and merged[0].end == 20.0

    def test_overlap_merges_even_with_zero_tolerance(self):
        trace = ContactTrace(
            [pair_contact(0.0, 15.0, 0, 1), pair_contact(10.0, 25.0, 0, 1)]
        )
        merged = merge_overlapping(trace)
        assert len(merged) == 1
        assert merged[0].end == 25.0

    def test_different_member_sets_untouched(self):
        trace = ContactTrace(
            [pair_contact(0.0, 10.0, 0, 1), pair_contact(5.0, 15.0, 1, 2)]
        )
        assert len(merge_overlapping(trace, gap_tolerance=100.0)) == 2

    def test_nested_interval_absorbed(self):
        trace = ContactTrace(
            [pair_contact(0.0, 100.0, 0, 1), pair_contact(10.0, 20.0, 0, 1)]
        )
        merged = merge_overlapping(trace)
        assert len(merged) == 1
        assert merged[0].duration == 100.0

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            merge_overlapping(ContactTrace([]), gap_tolerance=-1.0)


class TestDropAndClip:
    def test_drop_short_contacts(self):
        trace = ContactTrace(
            [pair_contact(0.0, 0.5, 0, 1), pair_contact(10.0, 20.0, 0, 1)]
        )
        kept = drop_short_contacts(trace, min_duration=1.0)
        assert len(kept) == 1
        assert kept[0].duration == 10.0

    def test_clip_trims_borders(self):
        trace = ContactTrace([pair_contact(0.0, 100.0, 0, 1)])
        window = clip(trace, 40.0, 60.0)
        assert len(window) == 1
        assert (window[0].start, window[0].end) == (40.0, 60.0)

    def test_clip_drops_outside(self):
        trace = ContactTrace(
            [pair_contact(0.0, 10.0, 0, 1), pair_contact(200.0, 210.0, 0, 1)]
        )
        assert len(clip(trace, 50.0, 100.0)) == 0

    def test_clip_validates_window(self):
        with pytest.raises(ValueError):
            clip(ContactTrace([]), 10.0, 10.0)


class TestRelabel:
    def test_dense_ids(self):
        trace = ContactTrace([Contact(0.0, 1.0, frozenset({NodeId(100), NodeId(7)}))])
        relabeled, mapping = relabel_nodes(trace)
        assert relabeled.nodes == (0, 1)
        assert mapping == {NodeId(7): 0, NodeId(100): 1}

    def test_structure_preserved(self):
        trace = ContactTrace(
            [clique_contact(0.0, 10.0, [5, 50, 500]), pair_contact(20.0, 30.0, 5, 50)]
        )
        relabeled, __ = relabel_nodes(trace)
        assert [c.size for c in relabeled] == [3, 2]


class TestSanitizePipeline:
    def test_pipeline_applies_everything(self):
        raw = ContactTrace(
            [
                Contact(10_000.0, 10_000.4, frozenset({NodeId(17), NodeId(90)})),  # blip
                Contact(10_010.0, 10_030.0, frozenset({NodeId(17), NodeId(90)})),
                Contact(10_032.0, 10_050.0, frozenset({NodeId(17), NodeId(90)})),  # flap
            ]
        )
        clean = sanitize(raw, min_duration=1.0, merge_gap=5.0)
        assert clean.nodes == (0, 1)
        assert clean.start_time == 0.0
        assert len(clean) == 1  # flaps merged, blip absorbed by merge window
        assert clean[0].duration == pytest.approx(40.0)


class TestValidationReport:
    def test_format_report_lists_claims(self):
        claims = [
            Claim("a", "first claim", True, "d1"),
            Claim("b", "second claim", False, "d2"),
        ]
        text = format_report(claims)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "1/2 claims reproduced" in text

    def test_validate_reproduction_runs_fast(self):
        # Full run is exercised by examples/validate_reproduction.py and
        # the benchmarks; here we only check the harness contract on
        # the capacity claim, which is trace-free.
        from repro.experiments.validation import _claim_capacity

        claim = _claim_capacity()
        assert claim.passed
        assert claim.claim_id == "capacity"


# ------------------------------------------------- sanitize() properties

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import DAY


@st.composite
def raw_pair_traces(draw) -> ContactTrace:
    """Messy pair-wise traces: arbitrary overlap, flaps, blips, offsets."""
    num = draw(st.integers(min_value=1, max_value=15))
    contacts = []
    for _ in range(num):
        u = draw(st.integers(min_value=0, max_value=4))
        v = draw(st.integers(min_value=5, max_value=9))
        start = draw(
            st.floats(min_value=0.0, max_value=3 * DAY, allow_nan=False)
        )
        duration = draw(
            st.floats(min_value=0.01, max_value=3_600.0, allow_nan=False)
        )
        contacts.append(pair_contact(start, start + duration, u, v))
    return ContactTrace(contacts, name="raw")


def _contact_key(contact: Contact):
    # Contact.__eq__ ignores members (compare=False); compare explicitly.
    return (contact.start, contact.end, tuple(sorted(contact.members)))


class TestSanitizeProperties:
    @settings(max_examples=60, deadline=None)
    @given(trace=raw_pair_traces())
    def test_sanitize_is_idempotent(self, trace):
        once = sanitize(trace)
        twice = sanitize(once)
        assert [_contact_key(c) for c in twice] == [_contact_key(c) for c in once]

    @settings(max_examples=60, deadline=None)
    @given(trace=raw_pair_traces())
    def test_no_overlapping_same_pair_contacts(self, trace):
        clean = sanitize(trace)
        by_pair = {}
        for contact in clean:
            by_pair.setdefault(contact.members, []).append(contact)
        for contacts in by_pair.values():
            contacts.sort(key=lambda c: c.start)
            for earlier, later in zip(contacts, contacts[1:]):
                assert later.start > earlier.end

    @settings(max_examples=60, deadline=None)
    @given(trace=raw_pair_traces())
    def test_sanitize_normalizes_invariants(self, trace):
        clean = sanitize(trace)
        if len(clean):
            assert clean.start_time == 0.0  # shifted to zero
            assert clean.nodes == tuple(range(clean.num_nodes))  # dense ids
            assert all(c.duration >= 1.0 for c in clean)  # blips dropped
