"""detlint: static rules, suppressions, scoping, CLI and corpus."""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.detlint import (
    ALL_RULE_IDS,
    PARSE_ERROR_RULE,
    RULES,
    lint_paths,
    lint_source,
    rules_for_path,
)
from repro.detlint.findings import format_github, format_json, format_text
from repro.detlint.runner import main as detlint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = REPO_ROOT / "tests" / "detlint_corpus"
SRC_TREE = REPO_ROOT / "src" / "repro"

#: Virtual paths placing a snippet inside each rule's scope.
SIM_PATH = "src/repro/sim/snippet.py"
CORE_PATH = "src/repro/core/snippet.py"
NET_PATH = "src/repro/net/snippet.py"


def rule_ids(findings):
    return [f.rule for f in findings]


class TestDet001GlobalRng:
    def test_module_level_call(self):
        findings = lint_source("import random\nx = random.random()\n", SIM_PATH)
        assert rule_ids(findings) == ["DET001"]
        assert "process-global RNG" in findings[0].message

    def test_unseeded_random_instance(self):
        findings = lint_source("import random\nr = random.Random()\n", SIM_PATH)
        assert rule_ids(findings) == ["DET001"]

    def test_seeded_random_is_clean(self):
        assert lint_source("import random\nr = random.Random(7)\n", SIM_PATH) == []
        assert lint_source("import random\nr = random.Random(x=7)\n", SIM_PATH) == []

    def test_from_import_alias(self):
        source = "from random import Random, choice\na = Random()\nb = choice([1])\n"
        assert rule_ids(lint_source(source, SIM_PATH)) == ["DET001", "DET001"]

    def test_system_random_always_flagged(self):
        findings = lint_source("import random\nr = random.SystemRandom(1)\n", SIM_PATH)
        assert rule_ids(findings) == ["DET001"]

    def test_method_on_instance_is_clean(self):
        source = "def f(rng):\n    return rng.random()\n"
        assert lint_source(source, SIM_PATH) == []


class TestDet002UnorderedIteration:
    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in set(items):\n    pass\n",
            "for x in frozenset(items):\n    pass\n",
            "for v in d.values():\n    pass\n",
            "ys = [x for x in {1, 2}]\n",
            "ys = {x for x in a.union(b)}\n",
            "for x in list(set(items)):\n    pass\n",
            "for i, x in enumerate(set(items)):\n    pass\n",
        ],
    )
    def test_flagged(self, snippet):
        assert rule_ids(lint_source(snippet, CORE_PATH)) == ["DET002"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "for x in sorted(set(items)):\n    pass\n",
            "for x in items:\n    pass\n",
            "for k in d:\n    pass\n",
            "for x in list(items):\n    pass\n",
            "n = len(set(items))\n",  # not an iteration
        ],
    )
    def test_clean(self, snippet):
        assert lint_source(snippet, CORE_PATH) == []


class TestDet003AmbientTime:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import time\nt = time.time()\n",
            "import time\nt = time.perf_counter()\n",
            "from datetime import datetime\nt = datetime.now()\n",
            "import datetime\nt = datetime.datetime.utcnow()\n",
            "import os\nb = os.urandom(4)\n",
            "import uuid\nu = uuid.uuid4()\n",
            "from time import time\nt = time()\n",
        ],
    )
    def test_flagged(self, snippet):
        assert rule_ids(lint_source(snippet, SIM_PATH)) == ["DET003"]

    def test_engine_clock_is_clean(self):
        assert lint_source("def f(sim):\n    return sim.now\n", SIM_PATH) == []

    def test_sleep_is_clean(self):
        # Not a clock *read*; DET003 targets values entering the sim.
        assert lint_source("import time\ntime.sleep(0)\n", SIM_PATH) == []


class TestDet004FloatEquality:
    def test_float_literal(self):
        assert rule_ids(lint_source("ok = ratio == 0.5\n", CORE_PATH)) == ["DET004"]

    def test_state_attribute(self):
        source = "def f(c, now):\n    return c.start == now\n"
        assert rule_ids(lint_source(source, CORE_PATH)) == ["DET004"]

    def test_not_eq(self):
        source = "def f(q, now):\n    return q.expires_at != now\n"
        assert rule_ids(lint_source(source, CORE_PATH)) == ["DET004"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "ok = count == 3\n",
            "def f(c, now):\n    return c.start <= now\n",
            "def f(r):\n    return r.metadata_delivered_at is None\n",
            "ok = name == 'mbt'\n",
        ],
    )
    def test_clean(self, snippet):
        assert lint_source(snippet, CORE_PATH) == []


class TestDet005MutableDefaults:
    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(xs=[]):\n    pass\n",
            "def f(xs={}):\n    pass\n",
            "def f(xs=set()):\n    pass\n",
            "def f(*, xs=list()):\n    pass\n",
        ],
    )
    def test_mutable_default(self, snippet):
        assert rule_ids(lint_source(snippet, NET_PATH)) == ["DET005"]

    def test_non_literal_pop_default(self):
        source = "def f(d, k, fallback):\n    return d.pop(k, fallback)\n"
        assert rule_ids(lint_source(source, NET_PATH)) == ["DET005"]

    @pytest.mark.parametrize(
        "snippet",
        [
            "def f(xs=None):\n    pass\n",
            "def f(xs=()):\n    pass\n",
            "def f(d, k):\n    return d.pop(k, 0)\n",
            "def f(d, k):\n    return d.pop(k, -1)\n",
            "def f(d, k):\n    return d.pop(k)\n",
            "def f(xs):\n    return xs.pop(0)\n",  # list.pop, one arg
        ],
    )
    def test_clean(self, snippet):
        assert lint_source(snippet, NET_PATH) == []


class TestSuppressions:
    BAD = "import random\nx = random.random()  # detlint: ignore[DET001] why\n"

    def test_same_line_specific(self):
        assert lint_source(self.BAD, SIM_PATH) == []

    def test_bare_ignore(self):
        source = "ok = ratio == 0.5  # detlint: ignore\n"
        assert lint_source(source, CORE_PATH) == []

    def test_wrong_rule_does_not_suppress(self):
        source = "ok = ratio == 0.5  # detlint: ignore[DET001]\n"
        assert rule_ids(lint_source(source, CORE_PATH)) == ["DET004"]

    def test_standalone_comment_above(self):
        source = (
            "# detlint: ignore[DET002] -- insertion-ordered\n"
            "for v in d.values():\n    pass\n"
        )
        assert lint_source(source, CORE_PATH) == []

    def test_standalone_carries_over_comment_block(self):
        source = (
            "# detlint: ignore[DET002] -- justification that\n"
            "# spans several comment lines before the code.\n"
            "for v in d.values():\n    pass\n"
        )
        assert lint_source(source, CORE_PATH) == []

    def test_suppressions_can_be_disabled(self):
        findings = lint_source(self.BAD, SIM_PATH, suppressions=False)
        assert rule_ids(findings) == ["DET001"]


class TestScoping:
    def test_out_of_scope_path_is_clean(self):
        source = "import time\nt = time.time()\n"
        assert lint_source(source, "benchmarks/bench_runtime.py") == []
        assert lint_source(source, "src/repro/experiments/sweep.py") == []

    def test_all_rules_overrides_scope(self):
        source = "import time\nt = time.time()\n"
        findings = lint_source(source, "anywhere.py", all_rules=True)
        assert rule_ids(findings) == ["DET003"]

    def test_rules_for_path(self):
        assert "DET002" in rules_for_path("src/repro/core/node.py")
        assert "DET005" not in rules_for_path("src/repro/sim/engine.py")
        assert rules_for_path("examples/quickstart.py") == frozenset()
        assert rules_for_path("x.py", all_rules=True) == frozenset(RULES)

    def test_every_rule_has_scope_and_fixit(self):
        for rule in RULES.values():
            assert rule.scopes, rule.id
            assert rule.fixit, rule.id
        assert ALL_RULE_IDS == (
            "CON001",
            "CON002",
            "CON003",
            "CON004",
            "CON005",
            "CON006",
            "DET001",
            "DET002",
            "DET003",
            "DET004",
            "DET005",
        )


class TestParseErrors:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", SIM_PATH)
        assert rule_ids(findings) == [PARSE_ERROR_RULE]


class TestFormats:
    FINDINGS = lint_source("import random\nx = random.random()\n", SIM_PATH)

    def test_text(self):
        text = format_text(self.FINDINGS)
        assert "DET001" in text and ":2:" in text and "fix:" in text

    def test_github(self):
        out = format_github(self.FINDINGS)
        assert out.startswith("::error file=")
        assert "title=DET001" in out and "line=2" in out

    def test_json_round_trip(self):
        payload = json.loads(format_json(self.FINDINGS))
        assert payload[0]["rule"] == "DET001"
        assert payload[0]["line"] == 2


class TestCorpus:
    """The fixture corpus: every bad file flags, every good file passes."""

    EXPECTED = {
        "repro/sim/bad_det001.py": ("DET001", 6),
        "repro/core/bad_det002.py": ("DET002", 6),
        "repro/sim/bad_det003.py": ("DET003", 6),
        "repro/core/bad_det004.py": ("DET004", 4),
        "repro/net/bad_det005.py": ("DET005", 5),
    }

    def test_expected_findings_per_file(self):
        for rel, (rule, count) in self.EXPECTED.items():
            path = CORPUS / rel
            findings = lint_source(path.read_text(), path.as_posix())
            assert rule_ids(findings) == [rule] * count, rel

    def test_good_files_are_clean(self):
        for rel in ("repro/core/good_clean.py", "unscoped/good_out_of_scope.py"):
            path = CORPUS / rel
            findings = lint_source(path.read_text(), path.as_posix())
            assert findings == [], rel

    def test_corpus_report(self):
        report = lint_paths([str(CORPUS)])
        counts = Counter(f.rule for f in report.findings)
        assert counts == Counter(
            {"DET001": 6, "DET002": 6, "DET003": 6, "DET004": 4, "DET005": 5}
        )
        assert report.exit_code == 1
        assert report.suppressions_matched >= 3  # good_clean.py + bad_det004.py


class TestExitCodes:
    def test_corpus_exits_nonzero(self, capsys):
        assert detlint_main([str(CORPUS)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        assert detlint_main(["/no/such/path.py"]) == 2

    def test_list_rules(self, capsys):
        assert detlint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_github_format(self, capsys):
        assert detlint_main([str(CORPUS), "--format", "github"]) == 1
        assert "::error file=" in capsys.readouterr().out


class TestLiveTree:
    def test_src_repro_is_clean(self):
        """The acceptance bar: the shipped tree honours its own linter."""
        report = lint_paths([str(SRC_TREE)])
        assert report.findings == [], format_text(report.findings)
        assert report.files_checked > 50


class TestCliIntegration:
    def test_repro_lint_subcommand(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["lint", str(CORPUS)]) == 1
        assert "DET00" in capsys.readouterr().out
        assert cli_main(["lint", str(SRC_TREE)]) == 0
