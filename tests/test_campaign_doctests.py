"""Tests for multi-seed campaigns plus doctest execution."""

from __future__ import annotations

import doctest

import pytest

from repro.core.mbt import ProtocolVariant
from repro.experiments.campaign import (
    CampaignResult,
    Spread,
    compare,
    format_campaign,
    repeat,
    separated,
)
from repro.sim.runner import SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace


def trace_factory(seed: int):
    return generate_dieselnet_trace(
        DieselNetConfig(num_buses=10, num_days=3), seed=seed
    )


class TestSpread:
    def test_of_computes_moments(self):
        spread = Spread.of([0.2, 0.4, 0.6])
        assert spread.mean == pytest.approx(0.4)
        assert spread.minimum == 0.2
        assert spread.maximum == 0.6
        assert spread.count == 3
        assert spread.std == pytest.approx(0.1633, rel=1e-3)

    def test_of_rejects_empty(self):
        with pytest.raises(ValueError):
            Spread.of([])

    def test_interval(self):
        spread = Spread.of([0.5, 0.5])
        assert spread.interval() == (0.5, 0.5)

    def test_describe(self):
        assert "±" in Spread.of([0.1, 0.3]).describe()

    def test_separated(self):
        low = Spread.of([0.1, 0.12, 0.11])
        high = Spread.of([0.9, 0.88, 0.91])
        overlapping = Spread.of([0.05, 0.95])
        assert separated(low, high)
        assert not separated(low, overlapping)


class TestCampaign:
    def test_repeat_runs_all_seeds(self):
        config = SimulationConfig(files_per_day=10)
        result = repeat("mbt", trace_factory, config, seeds=(0, 1, 2))
        assert result.metadata.count == 3
        assert len(result.results) == 3
        assert 0.0 <= result.file.mean <= 1.0

    def test_repeat_requires_seeds(self):
        with pytest.raises(ValueError):
            repeat("x", trace_factory, SimulationConfig(), seeds=())

    def test_compare_shares_seeds(self):
        configs = {
            "mbt": SimulationConfig(files_per_day=10),
            "mbt-qm": SimulationConfig(
                files_per_day=10, variant=ProtocolVariant.MBT_QM
            ),
        }
        results = compare(configs, trace_factory, seeds=(0, 1))
        assert [r.name for r in results] == ["mbt", "mbt-qm"]
        # The paper's ordering should hold on means even at two seeds.
        assert results[0].file.mean >= results[1].file.mean - 0.05

    def test_format_campaign(self):
        result = CampaignResult(
            name="demo",
            metadata=Spread.of([0.5, 0.6]),
            file=Spread.of([0.4, 0.5]),
            results=(),
        )
        text = format_campaign([result])
        assert "demo" in text
        assert "±" in text


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.sim.engine",
            "repro.types",
        ],
    )
    def test_module_doctests_pass(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        failures, __ = doctest.testmod(module, verbose=False)
        assert failures == 0
