"""Tests for MaxProp, direct delivery and the podcasting baseline."""

from __future__ import annotations

import math

import pytest

from repro.core.podcast import PodcastConfig, PodcastSimulation
from repro.routing.base import Message, simulate_routing
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.maxprop import MaxPropRouter
from repro.traces.base import ContactTrace
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY, NodeId

from conftest import pair_contact


def msg(msg_id: int, src: int, dst: int, created: float = 0.0, ttl: float = 10 * DAY):
    return Message(msg_id, NodeId(src), NodeId(dst), created, ttl)


class TestDirectDelivery:
    def test_delivers_only_on_direct_contact(self):
        trace = ContactTrace(
            [pair_contact(10.0, 20.0, 0, 1), pair_contact(30.0, 40.0, 1, 2)]
        )
        direct = simulate_routing(trace, [msg(0, 0, 2)], DirectDeliveryRouter())
        assert direct.delivered == 0
        met = simulate_routing(trace, [msg(0, 0, 1)], DirectDeliveryRouter())
        assert met.delivered == 1
        assert met.transmissions == 1

    def test_lower_bound_of_epidemic(self):
        trace = generate_dieselnet_trace(DieselNetConfig(num_buses=12, num_days=5), 0)
        messages = [
            msg(i, int(trace.nodes[i % 6]), int(trace.nodes[-1 - i % 4]))
            for i in range(20)
        ]
        direct = simulate_routing(trace, messages, DirectDeliveryRouter())
        epidemic = simulate_routing(trace, messages, EpidemicRouter())
        assert direct.delivered <= epidemic.delivered
        assert direct.transmissions <= epidemic.transmissions


class TestMaxProp:
    def test_meeting_probabilities_normalize(self):
        router = MaxPropRouter()
        router.on_encounter(NodeId(0), NodeId(1), 0.0)
        router.on_encounter(NodeId(0), NodeId(1), 1.0)
        router.on_encounter(NodeId(0), NodeId(2), 2.0)
        p1 = router.meeting_probability(NodeId(0), NodeId(1))
        p2 = router.meeting_probability(NodeId(0), NodeId(2))
        assert p1 == pytest.approx(2 / 3)
        assert p2 == pytest.approx(1 / 3)
        assert p1 + p2 == pytest.approx(1.0)

    def test_unknown_peer_probability_zero(self):
        router = MaxPropRouter()
        assert router.meeting_probability(NodeId(0), NodeId(9)) == 0.0

    def test_path_cost_prefers_frequent_paths(self):
        router = MaxPropRouter()
        # Node 1 mostly meets 3; node 2 mostly meets 0 and rarely 3.
        for __ in range(8):
            router.on_encounter(NodeId(1), NodeId(3), 0.0)
        for __ in range(2):
            router.on_encounter(NodeId(1), NodeId(0), 0.0)
        router.on_encounter(NodeId(2), NodeId(3), 0.0)
        for __ in range(9):
            router.on_encounter(NodeId(2), NodeId(0), 0.0)
        via_1 = router.path_cost(NodeId(1), NodeId(3))
        via_2 = router.path_cost(NodeId(2), NodeId(3))
        assert via_1 < via_2

    def test_path_cost_identity_and_unknown(self):
        router = MaxPropRouter()
        assert router.path_cost(NodeId(0), NodeId(0)) == 0.0
        assert math.isinf(router.path_cost(NodeId(0), NodeId(9)))

    def test_acked_messages_stop_spreading(self):
        trace = ContactTrace(
            [
                pair_contact(10.0, 20.0, 0, 1),  # delivery
                pair_contact(30.0, 40.0, 0, 2),  # would re-spread
            ]
        )
        router = MaxPropRouter()
        result = simulate_routing(trace, [msg(0, 0, 1)], router)
        assert result.delivered == 1
        assert router.is_acked(0)
        assert result.transmissions == 1  # no copy to node 2 after ack

    def test_hop_counts_tracked(self):
        trace = ContactTrace(
            [pair_contact(10.0, 20.0, 0, 1), pair_contact(30.0, 40.0, 1, 2)]
        )
        router = MaxPropRouter()
        simulate_routing(trace, [msg(0, 0, 3)], router)
        assert router._hops[(NodeId(1), 0)] == 1
        assert router._hops[(NodeId(2), 0)] == 2

    def test_delivers_on_dieselnet(self):
        trace = generate_dieselnet_trace(DieselNetConfig(num_buses=14, num_days=6), 1)
        messages = [
            msg(i, int(trace.nodes[i % 7]), int(trace.nodes[-1 - i % 7]))
            for i in range(30)
        ]
        result = simulate_routing(trace, messages, MaxPropRouter(),
                                  transfers_per_contact=10)
        assert result.delivery_ratio > 0.5

    def test_cheaper_than_epidemic_with_acks(self):
        trace = generate_dieselnet_trace(DieselNetConfig(num_buses=14, num_days=6), 1)
        messages = [
            msg(i, int(trace.nodes[i % 7]), int(trace.nodes[-1 - i % 7]))
            for i in range(30)
        ]
        epidemic = simulate_routing(trace, messages, EpidemicRouter())
        maxprop = simulate_routing(trace, messages, MaxPropRouter())
        assert maxprop.transmissions < epidemic.transmissions


class TestPodcastBaseline:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_dieselnet_trace(DieselNetConfig(num_buses=14, num_days=5), 3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PodcastConfig(internet_access_fraction=2.0)
        with pytest.raises(ValueError):
            PodcastConfig(entries_per_contact=-1)
        with pytest.raises(ValueError):
            PodcastConfig(max_subscriptions=0)

    def test_deterministic(self, trace):
        a = PodcastSimulation(trace, PodcastConfig(seed=5)).run()
        b = PodcastSimulation(trace, PodcastConfig(seed=5)).run()
        assert a.file_delivery_ratio == b.file_delivery_ratio

    def test_ratios_valid_and_coupled(self, trace):
        result = PodcastSimulation(trace, PodcastConfig(seed=5)).run()
        # Entries are whole files with metadata: both ratios coincide.
        assert 0.0 < result.file_delivery_ratio <= 1.0
        assert result.file_delivery_ratio == result.metadata_delivery_ratio

    def test_more_budget_helps(self, trace):
        small = PodcastSimulation(
            trace, PodcastConfig(seed=5, entries_per_contact=1)
        ).run()
        big = PodcastSimulation(
            trace, PodcastConfig(seed=5, entries_per_contact=8)
        ).run()
        assert big.file_delivery_ratio >= small.file_delivery_ratio

    def test_mbt_beats_podcast_on_query_workload(self, trace):
        from repro.sim.runner import Simulation, SimulationConfig

        podcast = PodcastSimulation(
            trace, PodcastConfig(seed=5, entries_per_contact=3)
        ).run()
        mbt = Simulation(
            trace,
            SimulationConfig(seed=5, files_per_contact=3, metadata_per_contact=3),
        ).run()
        # The discovery step is precisely what the baseline lacks.
        assert mbt.file_delivery_ratio > podcast.file_delivery_ratio

    def test_subscriptions_capped(self, trace):
        sim = PodcastSimulation(
            trace, PodcastConfig(seed=5, max_subscriptions=2)
        )
        sim.run()
        for state in sim._states.values():
            assert len(state.subscriptions) <= 2
