"""Persistent trace cache: packed format, failure modes, kernel layering."""

from __future__ import annotations

import multiprocessing
import os
import struct

import pytest

from repro.exec import (
    TRACE_CACHE_ENV,
    TraceSpec,
    build_trace,
    resolve_execution_mode,
    set_trace_cache_dir,
    trace_cache_clear,
    trace_perf_counters,
    trace_spec_fingerprint,
)
from repro.traces import cache
from repro.traces.base import Contact, ContactTrace
from repro.traces.mobility import CommunityConfig, generate_community_trace
from repro.types import HOUR, NodeId


def _records(trace):
    return [(c.start, c.end, tuple(sorted(c.members))) for c in trace]


def _sample_trace(name="sample"):
    return ContactTrace(
        [
            Contact(0.5, 100.25, frozenset({NodeId(0), NodeId(3)})),
            Contact(0.5, 7200.0, frozenset({NodeId(1), NodeId(2), NodeId(5)})),
            # Values that don't survive %.3f-style truncation:
            Contact(1.0 / 3.0, 2.0 / 3.0 + 9000.0, frozenset({NodeId(7), NodeId(9)})),
        ],
        name=name,
    )


FAST = CommunityConfig(
    num_nodes=12, num_communities=2, area_size=800.0, community_radius=120.0,
    radio_range=60.0, tick=30.0, duration=2 * HOUR,
)


@pytest.fixture
def counters():
    cache.reset_cache_counters()
    yield
    cache.reset_cache_counters()


@pytest.fixture
def cache_dir(tmp_path, counters):
    """A kernel wired to a fresh disk cache (and unwired afterwards)."""
    directory = tmp_path / "trace-cache"
    previous = set_trace_cache_dir(directory)
    trace_cache_clear()
    yield directory
    set_trace_cache_dir(previous)
    trace_cache_clear()


class TestPackedFormat:
    def test_round_trip_is_bit_exact(self):
        trace = _sample_trace()
        restored = cache.unpack_trace(cache.pack_trace(trace))
        assert restored.name == trace.name
        assert _records(restored) == _records(trace)

    def test_round_trip_real_trace(self):
        trace = generate_community_trace(FAST, seed=5)
        restored = cache.unpack_trace(cache.pack_trace(trace))
        assert _records(restored) == _records(trace)

    def test_rejects_bad_magic(self):
        blob = cache.pack_trace(_sample_trace())
        with pytest.raises(ValueError, match="magic"):
            cache.unpack_trace(b"XXXX" + blob[4:])

    def test_rejects_truncation(self):
        blob = cache.pack_trace(_sample_trace())
        with pytest.raises(ValueError):
            cache.unpack_trace(blob[: len(blob) // 2])

    def test_rejects_flipped_payload_bit(self):
        blob = bytearray(cache.pack_trace(_sample_trace()))
        blob[-1] ^= 0x01
        with pytest.raises(ValueError, match="checksum"):
            cache.unpack_trace(bytes(blob))

    def test_rejects_version_skew(self):
        blob = cache.pack_trace(_sample_trace())
        header = struct.pack(
            "<4sI", b"RTRC", cache.CACHE_VERSION + 1
        ) + blob[8:cache._HEADER.size]
        with pytest.raises(ValueError, match="version"):
            cache.unpack_trace(header + blob[cache._HEADER.size:])

    def test_rejects_lying_contact_count(self):
        # A corrupted count field must fail fast, not loop for billions
        # of phantom records.
        blob = bytearray(cache.pack_trace(_sample_trace()))
        offset = cache._HEADER.size + 2  # the u32 count after the name length
        blob[offset:offset + 4] = struct.pack("<I", 0xFFFFFFFF)
        payload = bytes(blob[cache._HEADER.size:])
        import hashlib

        digest = hashlib.sha256(payload).digest()[:16]
        blob[:cache._HEADER.size] = cache._HEADER.pack(
            b"RTRC", cache.CACHE_VERSION, len(payload), digest
        )
        with pytest.raises(ValueError, match="too short"):
            cache.unpack_trace(bytes(blob))


class TestDiskStore:
    def test_store_then_load(self, tmp_path, counters):
        trace = _sample_trace()
        assert cache.store(tmp_path, "k1", trace)
        loaded = cache.load(tmp_path, "k1")
        assert loaded is not None
        assert _records(loaded) == _records(trace)
        tallies = cache.cache_counters()
        assert tallies["perf.trace.disk_writes"] == 1
        assert tallies["perf.trace.disk_hits"] == 1

    def test_missing_entry_is_a_miss(self, tmp_path, counters):
        assert cache.load(tmp_path, "absent") is None
        assert cache.cache_counters()["perf.trace.disk_misses"] == 1

    def test_corrupt_entry_discarded_and_counted(self, tmp_path, counters):
        cache.store(tmp_path, "k", _sample_trace())
        path = cache.entry_path(tmp_path, "k")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.load(tmp_path, "k") is None
        assert cache.cache_counters()["perf.trace.disk_corrupt"] == 1
        assert not path.exists()  # bad file removed so it can be rebuilt

    def test_version_skew_discarded_and_counted(self, tmp_path, counters):
        cache.store(tmp_path, "k", _sample_trace())
        path = cache.entry_path(tmp_path, "k")
        raw = path.read_bytes()
        path.write_bytes(
            struct.pack("<4sI", b"RTRC", cache.CACHE_VERSION + 7) + raw[8:]
        )
        assert cache.load(tmp_path, "k") is None
        assert cache.cache_counters()["perf.trace.disk_version_skew"] == 1
        assert not path.exists()

    def test_unwritable_directory_degrades_gracefully(self, tmp_path, counters):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        assert cache.store(blocked, "k", _sample_trace()) is False
        assert cache.cache_counters()["perf.trace.disk_write_errors"] == 1

    def test_concurrent_writers_leave_a_valid_entry(self, tmp_path, counters):
        trace = generate_community_trace(FAST, seed=2)
        procs = [
            multiprocessing.Process(
                target=_store_worker, args=(str(tmp_path), "shared", FAST, 2)
            )
            for __ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        # Whatever interleaving happened, the published entry is whole.
        loaded = cache.load(tmp_path, "shared")
        assert loaded is not None
        assert _records(loaded) == _records(trace)
        leftovers = [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]
        assert leftovers == []


def _store_worker(directory, key, config, seed):
    trace = generate_community_trace(config, seed=seed)
    if not cache.store(directory, key, trace):
        raise SystemExit(1)


class TestKernelLayering:
    def test_cold_build_writes_warm_load_skips_build(self, cache_dir):
        spec = TraceSpec.of(generate_community_trace, FAST, seed=4)
        cold = build_trace(spec)
        after_cold = trace_perf_counters()
        assert after_cold["perf.trace.disk_writes"] == 1

        trace_cache_clear()  # drop the LRU; the disk entry must serve
        warm = build_trace(spec)
        after_warm = trace_perf_counters()
        assert after_warm["perf.trace.disk_hits"] == 1
        assert after_warm["perf.trace.builds"] == after_cold["perf.trace.builds"]
        assert _records(cold) == _records(warm)

    def test_corrupted_entry_silently_rebuilds(self, cache_dir):
        spec = TraceSpec.of(generate_community_trace, FAST, seed=4)
        first = build_trace(spec)
        key = trace_spec_fingerprint(spec)
        path = cache.entry_path(cache_dir, key)
        raw = bytearray(path.read_bytes())
        raw[40] ^= 0xFF
        path.write_bytes(bytes(raw))

        trace_cache_clear()
        rebuilt = build_trace(spec)
        tallies = trace_perf_counters()
        assert tallies["perf.trace.disk_corrupt"] == 1
        assert tallies["perf.trace.disk_writes"] == 2  # re-published
        assert _records(rebuilt) == _records(first)

    def test_distinct_specs_get_distinct_entries(self, cache_dir):
        spec_a = TraceSpec.of(generate_community_trace, FAST, seed=1)
        spec_b = TraceSpec.of(generate_community_trace, FAST, seed=2)
        assert trace_spec_fingerprint(spec_a) != trace_spec_fingerprint(spec_b)
        build_trace(spec_a)
        build_trace(spec_b)
        assert len(list(cache_dir.glob("*.trace"))) == 2

    def test_env_var_enables_the_disk_layer(self, tmp_path, counters, monkeypatch):
        directory = tmp_path / "from-env"
        monkeypatch.setenv(TRACE_CACHE_ENV, str(directory))
        trace_cache_clear()
        build_trace(TraceSpec.of(generate_community_trace, FAST, seed=9))
        assert len(list(directory.glob("*.trace"))) == 1
        trace_cache_clear()

    def test_no_dir_means_no_disk_traffic(self, counters, monkeypatch):
        monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
        trace_cache_clear()
        build_trace(TraceSpec.of(generate_community_trace, FAST, seed=9))
        tallies = trace_perf_counters()
        assert tallies["perf.trace.disk_hits"] == 0
        assert tallies["perf.trace.disk_misses"] == 0
        assert tallies["perf.trace.disk_writes"] == 0
        trace_cache_clear()


class TestExecutionMode:
    def test_jobs_one_is_inline(self):
        assert resolve_execution_mode(1) == ("inline", 1)

    def test_explicit_processes_keeps_the_pool(self):
        assert resolve_execution_mode(4, "processes") == ("processes", 4)

    def test_explicit_inline_collapses_jobs(self):
        assert resolve_execution_mode(8, "inline") == ("inline", 1)

    def test_auto_follows_core_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_execution_mode(4) == ("inline", 1)
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert resolve_execution_mode(4) == ("processes", 4)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            resolve_execution_mode(0)
        with pytest.raises(ValueError):
            resolve_execution_mode(2, "threads")
