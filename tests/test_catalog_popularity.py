"""Unit tests for the popularity model and server-side tracker."""

from __future__ import annotations

import math
import random

import pytest

from repro.catalog.popularity import (
    PopularityModel,
    PopularityTracker,
    sample_popularity,
    truncated_exponential_mean,
)
from repro.types import DAY, NodeId, Uri

URI = Uri("dtn://fox/f000001")


class TestSamplePopularity:
    def test_boundaries(self):
        assert sample_popularity(0.0, lam=5.0) == 0.0
        assert sample_popularity(1.0, lam=5.0) == pytest.approx(1.0)

    def test_monotonic_in_x(self):
        lam = 10.0
        xs = [i / 20 for i in range(21)]
        ys = [sample_popularity(x, lam) for x in xs]
        assert ys == sorted(ys)

    def test_matches_inverse_cdf_formula(self):
        lam, x = 7.0, 0.35
        expected = -math.log(1.0 - x * (1.0 - math.exp(-lam))) / lam
        assert sample_popularity(x, lam) == pytest.approx(expected)

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            sample_popularity(0.5, 0.0)

    def test_rejects_out_of_range_x(self):
        with pytest.raises(ValueError):
            sample_popularity(-0.1, 1.0)
        with pytest.raises(ValueError):
            sample_popularity(1.1, 1.0)

    def test_mean_approx_one_over_lambda(self):
        lam = 20.0
        rng = random.Random(0)
        samples = [sample_popularity(rng.random(), lam) for __ in range(20_000)]
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(1.0 / lam, rel=0.1)

    def test_exact_mean_formula(self):
        lam = 20.0
        rng = random.Random(1)
        samples = [sample_popularity(rng.random(), lam) for __ in range(40_000)]
        empirical = sum(samples) / len(samples)
        assert empirical == pytest.approx(truncated_exponential_mean(lam), rel=0.05)


class TestPopularityModel:
    def test_paper_lambda_coupling(self):
        # λ = n/2 so that n files/day × mean popularity ≈ 2 queries/day.
        model = PopularityModel.for_files_per_day(40)
        assert model.lam == pytest.approx(20.0)

    def test_custom_query_rate(self):
        model = PopularityModel.for_files_per_day(30, queries_per_node_per_day=3.0)
        assert model.lam == pytest.approx(10.0)

    def test_samples_in_unit_interval(self):
        model = PopularityModel(lam=5.0)
        rng = random.Random(2)
        for p in model.sample_many(rng, 500):
            assert 0.0 <= p <= 1.0

    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ValueError):
            PopularityModel(lam=-1.0)

    def test_rejects_bad_files_per_day(self):
        with pytest.raises(ValueError):
            PopularityModel.for_files_per_day(0)

    def test_mean_property(self):
        model = PopularityModel(lam=10.0)
        assert model.mean == pytest.approx(truncated_exponential_mean(10.0))


class TestPopularityTracker:
    def test_popularity_counts_distinct_requesters(self):
        tracker = PopularityTracker(population=10)
        tracker.record_request(URI, NodeId(1), now=0.0)
        tracker.record_request(URI, NodeId(2), now=10.0)
        tracker.record_request(URI, NodeId(1), now=20.0)  # duplicate node
        assert tracker.popularity_of(URI, now=30.0) == pytest.approx(0.2)

    def test_window_expires_old_requests(self):
        tracker = PopularityTracker(population=4, window=DAY)
        tracker.record_request(URI, NodeId(1), now=0.0)
        assert tracker.popularity_of(URI, now=DAY - 1) == pytest.approx(0.25)
        assert tracker.popularity_of(URI, now=DAY + 1) == 0.0

    def test_unknown_uri_is_zero(self):
        tracker = PopularityTracker(population=4)
        assert tracker.popularity_of(URI, now=0.0) == 0.0

    def test_capped_at_one(self):
        tracker = PopularityTracker(population=1)
        tracker.record_request(URI, NodeId(1), now=0.0)
        tracker.record_request(URI, NodeId(2), now=0.0)
        assert tracker.popularity_of(URI, now=1.0) == 1.0

    def test_snapshot(self):
        tracker = PopularityTracker(population=2)
        other = Uri("dtn://abc/f2")
        tracker.record_request(URI, NodeId(1), now=0.0)
        snap = tracker.snapshot([URI, other], now=1.0)
        assert snap[URI] == pytest.approx(0.5)
        assert snap[other] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PopularityTracker(population=0)
        with pytest.raises(ValueError):
            PopularityTracker(population=1, window=0.0)
