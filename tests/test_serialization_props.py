"""Serialization round-trips and additional property-based tests."""

from __future__ import annotations

import json
import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.intercontact import intercontact_samples, summarize
from repro.catalog.popularity import PopularityModel
from repro.cli import main as cli_main
from repro.experiments.report import sweep_to_dict, sweep_to_json
from repro.experiments.sweep import SweepPoint, SweepResult
from repro.sim.metrics import MetricsCollector
from repro.sim.spacetime import earliest_arrival
from repro.traces.base import Contact, ContactTrace
from repro.types import NodeId, Uri

from conftest import make_query, pair_contact


def tiny_sweep() -> SweepResult:
    points = (
        SweepPoint(x=0.1, ratios={"mbt": (0.5, 0.4)}),
        SweepPoint(x=0.9, ratios={"mbt": (0.9, 0.8)}),
    )
    return SweepResult(
        name="demo", x_label="x", x_values=(0.1, 0.9), points=points,
        protocols=("mbt",),
    )


class TestSerialization:
    def test_result_to_dict_round_trips_through_json(self):
        metrics = MetricsCollector()
        metrics.register_query(make_query(1, "dtn://fox/a", ["a"]), False)
        metrics.on_file_complete(NodeId(1), Uri("dtn://fox/a"), 10.0)
        payload = metrics.result({"custom": 1.0}).to_dict()
        text = json.dumps(payload)
        loaded = json.loads(text)
        assert loaded["file_delivery_ratio"] == 1.0
        assert loaded["extra"]["custom"] == 1.0

    def test_sweep_to_dict_structure(self):
        payload = sweep_to_dict(tiny_sweep())
        assert payload["name"] == "demo"
        assert payload["points"][1]["ratios"]["mbt"]["file"] == 0.8

    def test_sweep_to_json_parses(self):
        loaded = json.loads(sweep_to_json(tiny_sweep()))
        assert loaded["x_values"] == [0.1, 0.9]

    def test_cli_run_json(self, capsys):
        code = cli_main(
            ["run", "--trace", "dieselnet", "--protocol", "mbt",
             "--files-per-day", "10", "--json"]
        )
        assert code == 0
        loaded = json.loads(capsys.readouterr().out)
        assert "mbt" in loaded
        assert 0.0 <= loaded["mbt"]["file_delivery_ratio"] <= 1.0


# ---------------------------------------------------------------- properties


@st.composite
def chain_traces(draw):
    """Traces built from ordered random pair contacts over few nodes."""
    n = draw(st.integers(min_value=2, max_value=6))
    count = draw(st.integers(min_value=1, max_value=15))
    contacts = []
    for __ in range(count):
        start = draw(st.floats(min_value=0.0, max_value=1e5, allow_nan=False))
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            v = (v + 1) % n
        contacts.append(pair_contact(start, start + 10.0, u, v))
    return ContactTrace(contacts)


@given(trace=chain_traces())
@settings(max_examples=50)
def test_earliest_arrival_labels_sane(trace):
    source = trace.nodes[0]
    result = earliest_arrival(trace, [source], start_time=0.0)
    assert result.arrival[source] == 0.0
    for node, at in result.arrival.items():
        # Labels never precede the query start...
        assert at >= 0.0
        # ...and non-source labels lie within some contact's interval.
        if node != source:
            assert any(
                c.start <= at < c.end and node in c.members for c in trace
            )


@given(trace=chain_traces(), later=st.floats(min_value=0.0, max_value=1e5))
@settings(max_examples=50)
def test_earliest_arrival_monotone_in_start_time(trace, later):
    source = trace.nodes[0]
    early = earliest_arrival(trace, [source], start_time=0.0)
    late = earliest_arrival(trace, [source], start_time=later)
    # Starting later can only reach fewer nodes, no earlier.
    assert set(late.arrival) <= set(early.arrival) | {source}
    for node, at in late.arrival.items():
        if node in early.arrival:
            assert at >= early.arrival[node] - 1e-9


@given(
    deadlines=st.lists(
        st.floats(min_value=0.0, max_value=2e5), min_size=2, max_size=6
    ),
    trace=chain_traces(),
)
@settings(max_examples=40)
def test_reachable_set_monotone_in_deadline(deadlines, trace):
    source = trace.nodes[0]
    result = earliest_arrival(trace, [source], start_time=0.0)
    previous: set = set()
    for deadline in sorted(deadlines):
        current = set(result.reachable_by(deadline))
        assert previous <= current
        previous = current


@given(trace=chain_traces())
@settings(max_examples=40)
def test_intercontact_samples_nonnegative_and_counted(trace):
    samples = intercontact_samples(trace)
    assert all(s >= 0.0 for s in samples)
    counts = trace.pair_contact_counts()
    expected = sum(max(0, c - 1) for c in counts.values())
    assert len(samples) == expected
    if samples:
        stats = summarize(samples)
        assert stats.count == len(samples)
        assert stats.mean >= 0.0


@given(
    files_per_day=st.integers(min_value=1, max_value=200),
    rate=st.floats(min_value=0.5, max_value=5.0),
)
def test_popularity_model_query_rate_identity(files_per_day, rate):
    model = PopularityModel.for_files_per_day(files_per_day, rate)
    assert math.isclose(model.lam, files_per_day / rate)
    # Expected queries/day = files/day × mean popularity ≈ rate for
    # large lambda; always below the nominal rate (truncation).
    expected = files_per_day * model.mean
    assert expected <= rate + 1e-9
