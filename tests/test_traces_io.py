"""Unit tests for trace serialization."""

from __future__ import annotations

import io

import pytest

from repro.traces.base import TraceError
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.traces.io import contacts_as_records, read_trace, write_trace
from repro.traces.nus import NUSConfig, generate_nus_trace

from conftest import tiny_trace


class TestRoundTrip:
    def test_round_trip_through_string(self):
        trace = tiny_trace()
        buffer = io.StringIO()
        write_trace(trace, buffer)
        buffer.seek(0)
        loaded = read_trace(buffer)
        assert [(c.start, c.end, c.members) for c in loaded] == [
            (c.start, c.end, c.members) for c in trace
        ]

    def test_round_trip_preserves_full_float_precision(self):
        # Times that die under fixed-point formatting: sub-millisecond
        # fractions and values needing all 17 significant digits.
        from repro.traces.base import Contact, ContactTrace
        from repro.types import NodeId

        trace = ContactTrace(
            [
                Contact(1.0 / 3.0, 2.0 / 3.0, frozenset({NodeId(0), NodeId(1)})),
                Contact(0.0001234, 86400.00056789, frozenset({NodeId(2), NodeId(3)})),
                Contact(1e-12, 1.0000000000000002, frozenset({NodeId(4), NodeId(5)})),
            ],
            name="precise",
        )
        buffer = io.StringIO()
        write_trace(trace, buffer)
        buffer.seek(0)
        loaded = read_trace(buffer)
        # Bitwise float equality, not approx: repr() round-trips float64.
        assert [(c.start, c.end, c.members) for c in loaded] == [
            (c.start, c.end, c.members) for c in trace
        ]

    def test_mobility_trace_round_trips_bit_exactly(self, tmp_path):
        from repro.traces.mobility import CommunityConfig, generate_community_trace
        from repro.types import HOUR

        trace = generate_community_trace(
            CommunityConfig(
                num_nodes=10, num_communities=2, area_size=600.0,
                community_radius=100.0, radio_range=60.0, duration=2 * HOUR,
            ),
            seed=11,
        )
        path = tmp_path / "community.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert [(c.start, c.end, c.members) for c in loaded] == [
            (c.start, c.end, c.members) for c in trace
        ]

    def test_round_trip_through_file(self, tmp_path):
        trace = generate_dieselnet_trace(DieselNetConfig(num_buses=8, num_days=2), seed=0)
        path = tmp_path / "diesel.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.nodes == trace.nodes

    def test_round_trip_preserves_cliques(self, tmp_path):
        trace = generate_nus_trace(
            NUSConfig(num_students=20, num_courses=4, num_days=3), seed=0
        )
        path = tmp_path / "nus.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert [c.members for c in loaded] == [c.members for c in trace]

    def test_name_defaults_to_file_stem(self, tmp_path):
        path = tmp_path / "campus.trace"
        write_trace(tiny_trace(), path)
        assert read_trace(path).name == "campus"


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\n1.0 2.0 0 1\n   \n# tail\n"
        trace = read_trace(io.StringIO(text))
        assert len(trace) == 1

    def test_clique_line(self):
        trace = read_trace(io.StringIO("0.0 10.0 3 1 2\n"))
        assert trace[0].members == {1, 2, 3}

    def test_too_few_fields_raises(self):
        with pytest.raises(TraceError, match="line 1"):
            read_trace(io.StringIO("1.0 2.0 0\n"))

    def test_bad_number_raises(self):
        with pytest.raises(TraceError, match="line 1"):
            read_trace(io.StringIO("abc 2.0 0 1\n"))

    def test_duplicate_node_raises(self):
        with pytest.raises(TraceError, match="two distinct"):
            read_trace(io.StringIO("1.0 2.0 4 4\n"))

    def test_inverted_interval_raises(self):
        with pytest.raises(TraceError):
            read_trace(io.StringIO("5.0 2.0 0 1\n"))

    def test_error_reports_line_number(self):
        text = "1.0 2.0 0 1\nbroken line here x\n"
        with pytest.raises(TraceError, match="line 2"):
            read_trace(io.StringIO(text))


class TestRecords:
    def test_contacts_as_records(self):
        records = contacts_as_records(tiny_trace())
        assert records[0] == (100.0, 200.0, (0, 1))
        assert all(members == tuple(sorted(members)) for __, __, members in records)
