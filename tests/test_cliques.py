"""Unit tests for clique computation, validated against networkx."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.net.messages import HelloMessage
from repro.sim.cliques import (
    cliques_containing,
    largest_clique_containing,
    maximal_cliques,
    neighbor_graph_from_hellos,
    partition_into_cliques,
    symmetrize,
)
from repro.types import NodeId

from conftest import random_symmetric_graph


def nx_cliques(graph) -> set:
    g = nx.Graph()
    g.add_nodes_from(graph)
    for u, neighbors in graph.items():
        for v in neighbors:
            g.add_edge(u, v)
    return {frozenset(c) for c in nx.find_cliques(g)}


class TestMaximalCliques:
    def test_triangle(self):
        graph = symmetrize({NodeId(0): {NodeId(1), NodeId(2)}, NodeId(1): {NodeId(2)}})
        cliques = set(maximal_cliques(graph))
        assert cliques == {frozenset({0, 1, 2})}

    def test_path_graph(self):
        graph = symmetrize({NodeId(0): {NodeId(1)}, NodeId(1): {NodeId(2)}})
        cliques = set(maximal_cliques(graph))
        assert cliques == {frozenset({0, 1}), frozenset({1, 2})}

    def test_isolated_vertex_is_singleton_clique(self):
        graph = {NodeId(0): set(), NodeId(1): {NodeId(2)}, NodeId(2): {NodeId(1)}}
        cliques = set(maximal_cliques(graph))
        assert frozenset({0}) in cliques

    def test_empty_graph(self):
        assert list(maximal_cliques({})) == []

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("edge_prob", [0.1, 0.3, 0.6])
    def test_matches_networkx_on_random_graphs(self, seed, edge_prob):
        graph = random_symmetric_graph(12, edge_prob, seed)
        ours = set(maximal_cliques(graph))
        assert ours == nx_cliques(graph)


class TestCliquesContaining:
    def test_returns_only_cliques_with_node(self):
        graph = symmetrize({NodeId(0): {NodeId(1)}, NodeId(1): {NodeId(2)}})
        for clique in cliques_containing(graph, NodeId(0)):
            assert NodeId(0) in clique

    def test_largest_clique_containing(self):
        graph = symmetrize(
            {
                NodeId(0): {NodeId(1), NodeId(2), NodeId(3)},
                NodeId(1): {NodeId(2)},
                NodeId(3): set(),
            }
        )
        assert largest_clique_containing(graph, NodeId(0)) == frozenset({0, 1, 2})

    def test_largest_clique_unknown_node(self):
        with pytest.raises(KeyError):
            largest_clique_containing({NodeId(0): set()}, NodeId(5))


class TestPartition:
    def test_partition_disjoint_and_covering(self):
        graph = random_symmetric_graph(15, 0.4, seed=3)
        parts = partition_into_cliques(graph)
        seen = set()
        for part in parts:
            assert not (part & seen)
            seen |= part
        assert seen == set(graph)

    def test_partition_parts_are_cliques(self):
        graph = random_symmetric_graph(12, 0.5, seed=4)
        for part in partition_into_cliques(graph):
            members = sorted(part)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    assert v in graph[u]

    def test_partition_deterministic(self):
        graph = random_symmetric_graph(12, 0.5, seed=5)
        assert partition_into_cliques(graph) == partition_into_cliques(graph)


class TestHelloGraph:
    def hello(self, sender: int, heard: list) -> HelloMessage:
        return HelloMessage(
            sender=NodeId(sender),
            heard=frozenset(NodeId(h) for h in heard),
            query_tokens=(),
            downloading=frozenset(),
            sent_at=0.0,
        )

    def test_bidirectional_hearing_creates_edge(self):
        graph = neighbor_graph_from_hellos([self.hello(1, [2]), self.hello(2, [1])])
        assert NodeId(2) in graph[NodeId(1)]
        assert NodeId(1) in graph[NodeId(2)]

    def test_unidirectional_hearing_is_not_an_edge(self):
        graph = neighbor_graph_from_hellos([self.hello(1, [2]), self.hello(2, [])])
        assert NodeId(2) not in graph[NodeId(1)]

    def test_unknown_neighbor_ignored(self):
        # Node 3 never sent a hello, so it cannot be confirmed.
        graph = neighbor_graph_from_hellos([self.hello(1, [3])])
        assert graph == {NodeId(1): set()}

    def test_classroom_forms_clique(self):
        members = [1, 2, 3, 4]
        hellos = [self.hello(m, [o for o in members if o != m]) for m in members]
        graph = neighbor_graph_from_hellos(hellos)
        cliques = set(maximal_cliques(graph))
        assert cliques == {frozenset(NodeId(m) for m in members)}
