"""The same hazards outside every rule scope: zero findings.

Path scoping is the linter's precision mechanism — benchmark drivers
and reporting code may read wall clocks and iterate sets freely.
"""

import random
import time


def wall_clock_report(rows):
    stamp = time.time()
    return [(stamp, row) for row in set(rows)]


def sample_rows(rows):
    return random.sample(list(rows), 2)
