"""DET002 fixtures: hash-order iteration in the simulation core."""


def broadcast(neighbors, stores):
    # BAD: set() call iterated directly.
    for peer in set(neighbors):
        yield peer
    # BAD: dict .values() view.
    for store in stores.values():
        yield store


def union_walk(a, b):
    # BAD: set-algebra result.
    for member in a.union(b):
        yield member


def literal_walk():
    # BAD: set literal.
    return [x for x in {3, 1, 2}]


def comprehension_walk(nodes):
    # BAD: set comprehension feeding a generator expression.
    return list(n for n in {n for n in nodes})


def wrapped_walk(nodes):
    # BAD: list() preserves the set's arbitrary order.
    for n in list(frozenset(nodes)):
        yield n


def good_sorted(neighbors, stores):
    # GOOD: canonical ordering restores determinism.
    for peer in sorted(set(neighbors)):
        yield peer
    for key in sorted(stores):
        yield stores[key]


def good_list_of_list(rows):
    # GOOD: lists are insertion-ordered.
    for row in list(rows):
        yield row
