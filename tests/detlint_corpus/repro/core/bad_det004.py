"""DET004 fixtures: float equality on simulation state."""


def contact_started(contact, now):
    # BAD: exact equality on an event time.
    return contact.start == now


def deadline_missed(query, now):
    # BAD: != on a float attribute.
    return query.expires_at != now


def is_half(ratio):
    # BAD: float-literal equality.
    return ratio == 0.5


def delivered_instantly(record):
    # BAD: _at-suffixed attributes are delivery instants.
    return record.metadata_delivered_at == record.file_delivered_at


def good_window(contact, now):
    # GOOD: orderings are robust.
    return contact.start <= now < contact.end


def good_tolerance(ratio):
    # GOOD: tolerance comparison.
    return abs(ratio - 0.5) < 1e-9


def good_int_equality(count):
    # GOOD: integer equality is exact by construction.
    return count == 3


def good_suppressed(contact, now):
    return contact.start == now  # detlint: ignore[DET004] boundary probe


def good_is_none(record):
    # GOOD: identity test, not float equality.
    return record.metadata_delivered_at is None
