"""A clean simulation-core file: canonical patterns + suppressions."""

import random


def seeded_stream(seed: int):
    rng = random.Random(seed)
    return [rng.random() for _ in range(4)]


def canonical_iteration(members, stores):
    for member in sorted(set(members)):
        yield member
    for key in sorted(stores):
        yield stores[key]


def window_check(contact, now: float) -> bool:
    return contact.start <= now < contact.end


def justified_exact_compare(cached_now: float, now: float) -> bool:
    # detlint: ignore[DET004] -- cache identity: the memo is only valid
    # at the exact instant it was computed for.
    return cached_now == now


def justified_values_iteration(states):
    # detlint: ignore[DET002] -- insertion-ordered dict, inserted in
    # deterministic node order.
    return [s for s in states.values()]


def safe_pop(credits, node):
    return credits.pop(node, 0)
