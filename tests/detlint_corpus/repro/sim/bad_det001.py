"""DET001 fixtures: global / unseeded randomness in a sim path."""

import random
from random import Random, randint


def jitter_contacts(contacts):
    # BAD: module-level function consumes the process-global stream.
    return [c + random.random() for c in contacts]


def pick_peer(peers):
    # BAD: random.choice is the classic ONE-simulator repro bug.
    return random.choice(peers)


def make_rng():
    # BAD: unseeded Random() seeds itself from OS entropy.
    return random.Random()


def make_rng_imported():
    # BAD: same, through the from-import alias.
    return Random()


def roll():
    # BAD: from-imported module-level function.
    return randint(0, 6)


def reseed_everything():
    # BAD: mutating the global stream perturbs every other consumer.
    random.seed(0)


def good_seeded(seed: int):
    # GOOD: explicitly seeded private instance.
    rng = random.Random(seed)
    return rng.random()


def good_seeded_kwarg(seed: int):
    # GOOD: seed passed as a keyword.
    return random.Random(x=seed)
