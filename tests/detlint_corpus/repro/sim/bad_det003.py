"""DET003 fixtures: ambient time / entropy inside the simulation."""

import os
import time
import uuid
from datetime import datetime
from time import time as wall_clock


def stamp_event(event):
    # BAD: wall clock inside the event loop.
    return (event, time.time())


def stamp_monotonic(event):
    # BAD: monotonic is still ambient process state.
    return (event, time.monotonic())


def stamp_datetime():
    # BAD: datetime.now() through the class.
    return datetime.now()


def fresh_id():
    # BAD: uuid4 draws OS entropy.
    return uuid.uuid4()


def fresh_token():
    # BAD: raw OS entropy.
    return os.urandom(8)


def aliased_stamp():
    # BAD: from-import alias of time.time.
    return wall_clock()


def good_engine_time(sim):
    # GOOD: only the engine clock supplies time.
    return sim.now


def good_parameter(now: float):
    # GOOD: time travels as data.
    return now + 1.0
