"""DET005 fixtures: mutable defaults / non-literal pop defaults."""

FALLBACK = {"pieces": 0}


def handle_hello(sender, receivers=[]):
    # BAD: mutable list default shared across calls.
    receivers.append(sender)
    return receivers


def handle_offer(offer, seen=set()):
    # BAD: mutable set default.
    seen.add(offer)
    return seen


def handle_budget(budget, limits={}):
    # BAD: mutable dict default.
    return limits.setdefault(budget, 0)


def handle_factory(queue=list()):
    # BAD: factory-call default is evaluated once and shared.
    return queue


def take_credit(credits, node):
    # BAD: non-literal pop default (shared module-level dict).
    return credits.pop(node, FALLBACK)


def good_none_default(sender, receivers=None):
    # GOOD: construct inside the call.
    receivers = [] if receivers is None else receivers
    receivers.append(sender)
    return receivers


def good_literal_pop(credits, node):
    # GOOD: literal defaults cannot alias.
    return credits.pop(node, 0)


def good_tuple_default(window=(0, 1)):
    # GOOD: immutable default.
    return window
