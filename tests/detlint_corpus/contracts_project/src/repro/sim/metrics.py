"""CON001 cross-check fixture: COUNTER_KEYS drifted from the registry.

``bogus_counter`` is listed but not registered as surfaced, and the
real surfaced keys are missing — both directions must fire.
"""

from typing import Tuple

COUNTER_KEYS: Tuple[str, ...] = (
    "events",
    "bogus_counter",
)
