"""CON003 fixture: a SimulationConfig with an unregistered knob.

``mystery_knob`` is not in ``repro.contracts.knobs.KNOB_REGISTRY``,
so CON003 must flag it (and, since this mini-tree's config lacks the
live fields, the aggregated stale-registry finding fires too).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SimulationConfig:
    mystery_knob: int = 0
    seed: int = 0
