"""CON002 fixture: a fingerprint-exclusion list drifted from the registry.

Missing ``perf.catalog.`` / ``perf.sched.`` and stripping an alien
prefix the registry never marked excluded.
"""

from typing import Tuple

FINGERPRINT_IGNORED_PREFIXES: Tuple[str, ...] = (
    "perf.time_us.",
    "perf.alien.",  # detlint: ignore[CON001] -- deliberate drift under test
)
