"""CON006 fixture: wire codec with ``metadata_to_fields`` dropping a key.

Every codec entry point is present so only the intended drift fires:
``metadata_to_fields`` omits ``signature`` from its emitted record.
"""


def encode_frame(kind, sender, sent_at, body):
    frame = {"type": kind, "sender": sender, "sent_at": sent_at}
    frame.update(body)
    return frame


def metadata_to_fields(record):
    return {
        "uri": record.uri,
        "name": record.name,
        "publisher": record.publisher,
        "description": record.description,
        "checksums": list(record.checksums),
        "size_bytes": record.size_bytes,
        "created_at": record.created_at,
        "ttl": record.ttl,
        "popularity": record.popularity,
    }


def metadata_from_fields(fields):
    return (
        fields["uri"],
        fields["name"],
        fields["publisher"],
        fields["description"],
        fields["checksums"],
        fields["size_bytes"],
        fields["created_at"],
        fields["ttl"],
        fields["popularity"],
        fields["signature"],
    )


def build_hello(heard, query_tokens, carried_query_tokens, downloading,
                held_uris, have):
    return {
        "heard": heard,
        "query_tokens": query_tokens,
        "carried_query_tokens": carried_query_tokens,
        "downloading": downloading,
        "held_uris": held_uris,
        "have": have,
    }


def build_metadata_frame(record):
    return {"record": record}


def build_piece_frame(record, index, payload_b64):
    return {"record": record, "index": index, "payload_b64": payload_b64}
