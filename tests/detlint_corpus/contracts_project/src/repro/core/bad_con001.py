"""CON001 fixture: unregistered counter keys in every literal form."""


def record(extra, perf):
    # A full-key literal outside the registry.
    extra["perf.nonsense_counter"] = 1
    # A recorder call whose bare name lands in an unregistered key.
    perf.count("bogus_name")
    # An f-string building keys under an unregistered prefix.
    for name in ("a", "b"):
        extra[f"faults.unregistered_{name}"] = 2
    # A registered key passes: no finding on this line.
    extra["faults.crashes"] = 0
