"""CON005 fixture: metadata builder drifted from both its twins.

The array twin in ``arraycore.py`` takes a different parameter set,
and the naive reference below is no longer an ordered prefix of the
optimized signature.
"""


def build_metadata_candidates(state, now, pairs):
    return [(state, now, pair) for pair in pairs]


def build_metadata_candidates_reference(state, extra):
    return [(state, extra)]
