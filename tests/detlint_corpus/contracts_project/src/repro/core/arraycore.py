"""CON005 fixture: array twin with a diverged parameter set.

``build_metadata_candidates`` here takes ``{view, state, now}`` while
the object builder in ``discovery.py`` takes ``{state, now, pairs}``;
``core/download.py`` is absent entirely, so the piece-kernel seam also
reports its missing counterpart.
"""


def build_metadata_candidates(view, state, now):
    return [(view, state, now)]


def build_piece_candidates(view, state, now):
    return [(view, state, now)]
