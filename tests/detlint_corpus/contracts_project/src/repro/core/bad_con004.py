"""CON004 fixture: the core layer reaching up into the executor."""

from repro.exec import run_many  # noqa: F401  (layer violation under test)


def sweep(specs):
    return run_many(specs, jobs=2)
