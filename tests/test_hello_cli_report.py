"""Unit tests for the hello protocol layer, CLI and report writers."""

from __future__ import annotations

import io

import pytest

from repro.cli import main as cli_main
from repro.experiments.report import (
    combined_markdown_report,
    sweep_to_csv,
    sweep_to_markdown,
)
from repro.experiments.sweep import SweepPoint, SweepResult
from repro.net.hello import (
    build_hello,
    derive_cliques,
    exchange_hellos,
    full_connectivity,
)
from repro.types import NodeId

from conftest import make_metadata, make_node, make_query


def states_for(registry, ids):
    return {NodeId(i): make_node(registry, node=i) for i in ids}


class TestHelloProtocol:
    def test_build_hello_carries_queries_and_downloads(self, registry):
        state = make_node(registry, node=1)
        record = make_metadata(registry, name="news island s01e01")
        state.accept_metadata(record, 0.0)
        state.add_own_query(make_query(1, record.uri, ["island"]))
        hello = build_hello(state, now=10.0, include_foreign_queries=False)
        assert hello.sender == NodeId(1)
        assert frozenset({"island"}) in hello.query_tokens
        assert record.uri in hello.downloading

    def test_exchange_updates_neighbor_tables(self, registry):
        states = states_for(registry, [0, 1, 2])
        connectivity = full_connectivity(frozenset(states))
        exchange_hellos(states, connectivity, now=100.0)
        for node, state in states.items():
            heard = state.heard_recently(101.0, window=5.0)
            assert heard == frozenset(states) - {node}

    def test_exchange_requires_rounds(self, registry):
        states = states_for(registry, [0, 1])
        with pytest.raises(ValueError):
            exchange_hellos(states, full_connectivity(frozenset(states)), 0.0, rounds=0)

    def test_derive_cliques_recovers_contact(self, registry):
        states = states_for(registry, [0, 1, 2, 3])
        cliques = derive_cliques(states, full_connectivity(frozenset(states)), 0.0)
        assert cliques == [frozenset(states)]

    def test_derive_cliques_partitions_disjoint_groups(self, registry):
        states = states_for(registry, [0, 1, 2, 3])
        connectivity = {
            NodeId(0): frozenset({NodeId(1)}),
            NodeId(1): frozenset({NodeId(0)}),
            NodeId(2): frozenset({NodeId(3)}),
            NodeId(3): frozenset({NodeId(2)}),
        }
        cliques = derive_cliques(states, connectivity, 0.0)
        assert sorted(cliques, key=min) == [
            frozenset({NodeId(0), NodeId(1)}),
            frozenset({NodeId(2), NodeId(3)}),
        ]

    def test_isolated_node_yields_no_singleton(self, registry):
        states = states_for(registry, [0, 1, 2])
        connectivity = {
            NodeId(0): frozenset({NodeId(1)}),
            NodeId(1): frozenset({NodeId(0)}),
            NodeId(2): frozenset(),
        }
        cliques = derive_cliques(states, connectivity, 0.0)
        assert cliques == [frozenset({NodeId(0), NodeId(1)})]


def tiny_sweep() -> SweepResult:
    points = (
        SweepPoint(x=0.1, ratios={"mbt": (0.5, 0.4), "mbt-q": (0.3, 0.2)}),
        SweepPoint(x=0.9, ratios={"mbt": (0.9, 0.8), "mbt-q": (0.6, 0.5)}),
    )
    return SweepResult(
        name="demo panel",
        x_label="access",
        x_values=(0.1, 0.9),
        points=points,
        protocols=("mbt", "mbt-q"),
    )


class TestReport:
    def test_csv_has_header_and_rows(self):
        text = sweep_to_csv(tiny_sweep())
        lines = text.strip().splitlines()
        assert lines[0] == "access,mbt_metadata,mbt_file,mbt-q_metadata,mbt-q_file"
        assert len(lines) == 3
        assert lines[1].startswith("0.1,0.5")

    def test_markdown_table(self):
        text = sweep_to_markdown(tiny_sweep())
        assert text.startswith("### demo panel")
        assert "| access | mbt meta | mbt file | mbt-q meta | mbt-q file |" in text
        assert "| 0.9 | 0.900 | 0.800 | 0.600 | 0.500 |" in text

    def test_combined_report(self):
        text = combined_markdown_report([tiny_sweep(), tiny_sweep()], "Panels")
        assert text.startswith("# Panels")
        assert text.count("### demo panel") == 2


class TestCLI:
    def test_capacity_command(self, capsys):
        assert cli_main(["capacity", "--max-n", "4"]) == 0
        out = capsys.readouterr().out
        assert "broadcast" in out
        assert "3" in out

    def test_trace_command_writes_file(self, tmp_path, capsys):
        out_path = tmp_path / "t.trace"
        assert cli_main(
            ["trace", "--kind", "nus", "--seed", "1", "--out", str(out_path)]
        ) == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "nodes" in out

    def test_stats_command(self, tmp_path, capsys):
        out_path = tmp_path / "t.trace"
        cli_main(["trace", "--kind", "dieselnet", "--out", str(out_path)])
        capsys.readouterr()
        assert cli_main(["stats", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "frequent pairs" in out

    def test_run_command_single_protocol(self, capsys):
        code = cli_main(
            [
                "run", "--trace", "dieselnet", "--protocol", "mbt",
                "--files-per-day", "10", "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mbt" in out
        assert "protocol" in out

    def test_figures_requires_panel(self, capsys):
        assert cli_main(["figures"]) == 2

    def test_figures_rejects_unknown_panel(self):
        with pytest.raises(SystemExit):
            cli_main(["figures", "fig9z"])
