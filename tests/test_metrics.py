"""Unit tests for delivery metrics."""

from __future__ import annotations

import pytest

from repro.sim.metrics import MetricsCollector
from repro.types import NodeId, Uri

from conftest import make_query


class TestMetricsCollector:
    def test_metadata_delivery_marks_live_query(self):
        metrics = MetricsCollector()
        query = make_query(1, "dtn://fox/a", ["a"], 0.0, 100.0)
        metrics.register_query(query, access_node=False)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/a"), now=50.0)
        record = metrics.records[0]
        assert record.metadata_delivered_at == 50.0
        assert not record.file_delivered

    def test_delivery_after_expiry_ignored(self):
        metrics = MetricsCollector()
        query = make_query(1, "dtn://fox/a", ["a"], 0.0, 100.0)
        metrics.register_query(query, access_node=False)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/a"), now=150.0)
        assert not metrics.records[0].metadata_delivered

    def test_wrong_node_or_uri_ignored(self):
        metrics = MetricsCollector()
        metrics.register_query(make_query(1, "dtn://fox/a", ["a"]), access_node=False)
        metrics.on_metadata(NodeId(2), Uri("dtn://fox/a"), now=1.0)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/b"), now=1.0)
        assert not metrics.records[0].metadata_delivered

    def test_first_delivery_time_kept(self):
        metrics = MetricsCollector()
        metrics.register_query(make_query(1, "dtn://fox/a", ["a"]), access_node=False)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/a"), now=10.0)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/a"), now=20.0)
        assert metrics.records[0].metadata_delivered_at == 10.0

    def test_file_completion_implies_metadata(self):
        metrics = MetricsCollector()
        metrics.register_query(make_query(1, "dtn://fox/a", ["a"]), access_node=False)
        metrics.on_file_complete(NodeId(1), Uri("dtn://fox/a"), now=30.0)
        record = metrics.records[0]
        assert record.file_delivered_at == 30.0
        assert record.metadata_delivered_at == 30.0

    def test_result_measures_non_access_only(self):
        metrics = MetricsCollector()
        dtn_query = make_query(1, "dtn://fox/a", ["a"])
        inet_query = make_query(2, "dtn://fox/a", ["a"])
        metrics.register_query(dtn_query, access_node=False)
        metrics.register_query(inet_query, access_node=True)
        metrics.on_file_complete(NodeId(2), Uri("dtn://fox/a"), now=1.0)
        result = metrics.result()
        assert result.queries_generated == 1  # only the non-access query
        assert result.file_delivery_ratio == 0.0
        assert result.access_file_delivery_ratio == 1.0

    def test_ratios(self):
        metrics = MetricsCollector()
        for node in (1, 2, 3, 4):
            metrics.register_query(make_query(node, "dtn://fox/a", ["a"]), False)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/a"), 1.0)
        metrics.on_metadata(NodeId(2), Uri("dtn://fox/a"), 1.0)
        metrics.on_file_complete(NodeId(1), Uri("dtn://fox/a"), 2.0)
        result = metrics.result()
        assert result.metadata_delivery_ratio == pytest.approx(0.5)
        assert result.file_delivery_ratio == pytest.approx(0.25)
        assert result.metadata_delivered == 2
        assert result.files_delivered == 1

    def test_empty_result(self):
        result = MetricsCollector().result()
        assert result.queries_generated == 0
        assert result.metadata_delivery_ratio == 0.0
        assert result.file_delivery_ratio == 0.0

    def test_transmission_counters_in_extra(self):
        metrics = MetricsCollector()
        metrics.count_metadata_transmission()
        metrics.count_piece_transmission()
        metrics.count_piece_transmission()
        result = metrics.result(extra={"custom": 7.0})
        assert result.extra["metadata_transmissions"] == 1.0
        assert result.extra["piece_transmissions"] == 2.0
        assert result.extra["custom"] == 7.0

    def test_duplicate_queries_same_target_both_tracked(self):
        metrics = MetricsCollector()
        metrics.register_query(make_query(1, "dtn://fox/a", ["a"]), False)
        metrics.register_query(make_query(1, "dtn://fox/a", ["b"]), False)
        metrics.on_metadata(NodeId(1), Uri("dtn://fox/a"), 1.0)
        assert all(r.metadata_delivered for r in metrics.records)

    def test_describe(self):
        metrics = MetricsCollector()
        metrics.register_query(make_query(1, "dtn://fox/a", ["a"]), False)
        text = metrics.result().describe()
        assert "metadata" in text and "file" in text
