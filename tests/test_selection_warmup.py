"""Tests for user selection policy, warm-up exclusion and engine
property-based invariants."""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.files import piece_payload
from repro.core.mbt import MobileBitTorrent, ProtocolConfig
from repro.core.node import NodeState
from repro.net.medium import ContactBudget
from repro.sim.metrics import MetricsCollector
from repro.sim.runner import Simulation, SimulationConfig
from repro.traces.dieselnet import DieselNetConfig, generate_dieselnet_trace
from repro.types import DAY, NodeId, Uri

from conftest import clique_contact, make_metadata, make_node, make_query
from test_mbt_engine import Harness


class TestSelectionPolicy:
    def test_unknown_policy_rejected(self, registry):
        with pytest.raises(ValueError):
            NodeState(NodeId(0), registry, selection_policy="vibes")

    def test_all_selects_every_match(self, registry):
        node = make_node(registry)
        a = make_metadata(registry, uri="dtn://fox/a", name="news island s01e01")
        b = make_metadata(registry, uri="dtn://fox/b", name="news island s01e02")
        node.accept_metadata(a, 0.0)
        node.accept_metadata(b, 0.0)
        node.add_own_query(make_query(0, a.uri, ["island"]))
        assert node.wanted_uris(0.0) == {a.uri, b.uri}

    def test_best_selects_single_match(self, registry):
        node = make_node(registry)
        node.selection_policy = "best"
        low = make_metadata(registry, uri="dtn://fox/low",
                            name="news island s01e01", popularity=0.1)
        high = make_metadata(registry, uri="dtn://fox/high",
                             name="news island s01e02", popularity=0.9)
        node.accept_metadata(low, 0.0)
        node.accept_metadata(high, 0.0)
        node.add_own_query(make_query(0, low.uri, ["island"]))
        assert node.wanted_uris(0.0) == {high.uri}

    def test_best_prefers_verified_over_popular_fake(self, registry):
        node = make_node(registry)
        node.selection_policy = "best"
        node.verify_signatures = False  # gullible store...
        real = make_metadata(registry, uri="dtn://fox/real",
                             name="news island s01e01", popularity=0.3)
        fake = make_metadata(registry, uri="dtn://pirate/fake",
                             name="news island s01e01", popularity=0.95,
                             signed=False)
        node.accept_metadata(real, 0.0)
        node.accept_metadata(fake, 0.0)
        node.add_own_query(make_query(0, real.uri, ["island"]))
        # ...but a careful user still checks the publisher signature.
        assert node.wanted_uris(0.0) == {real.uri}

    def test_best_policy_end_to_end(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=12, num_days=4), seed=7
        )
        result = Simulation(
            trace,
            SimulationConfig(seed=7, files_per_day=20, selection_policy="best"),
        ).run()
        assert 0.0 <= result.file_delivery_ratio <= 1.0

    def test_best_helps_under_unverified_pollution(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=16, num_days=6), seed=7
        )
        base = SimulationConfig(
            seed=7, files_per_day=25, fake_files_per_day=12,
            malicious_fraction=0.2, verify_signatures=False,
        )
        select_all = Simulation(trace, base).run()
        select_best = Simulation(
            trace, replace(base, selection_policy="best")
        ).run()
        assert select_best.file_delivery_ratio >= (
            select_all.file_delivery_ratio - 0.02
        )


class TestWarmup:
    def test_warmup_excludes_early_queries(self):
        metrics = MetricsCollector(measure_from=2 * DAY)
        early = make_query(1, "dtn://fox/a", ["a"], created_at=DAY,
                           expires_at=5 * DAY)
        late = make_query(1, "dtn://fox/b", ["b"], created_at=3 * DAY,
                          expires_at=6 * DAY)
        metrics.register_query(early, access_node=False)
        metrics.register_query(late, access_node=False)
        metrics.on_file_complete(NodeId(1), Uri("dtn://fox/a"), 1.5 * DAY)
        result = metrics.result()
        # Only the post-warm-up query counts; it was not delivered.
        assert result.queries_generated == 1
        assert result.file_delivery_ratio == 0.0

    def test_warmup_config_changes_population(self):
        trace = generate_dieselnet_trace(
            DieselNetConfig(num_buses=12, num_days=5), seed=7
        )
        full = Simulation(trace, SimulationConfig(seed=7, files_per_day=20)).run()
        warm = Simulation(
            trace, SimulationConfig(seed=7, files_per_day=20, warmup_days=2.0)
        ).run()
        assert warm.queries_generated < full.queries_generated
        assert warm.queries_generated > 0


# ------------------------------------------------------- engine properties


@st.composite
def contact_scenarios(draw):
    """A random small clique with random stores and queries."""
    num_nodes = draw(st.integers(min_value=2, max_value=4))
    num_records = draw(st.integers(min_value=1, max_value=5))
    meta_budget = draw(st.integers(min_value=0, max_value=6))
    piece_budget = draw(st.integers(min_value=0, max_value=6))
    holders = [
        draw(st.sets(st.integers(min_value=0, max_value=num_nodes - 1),
                     max_size=num_nodes))
        for __ in range(num_records)
    ]
    piece_holders = [
        draw(st.sets(st.integers(min_value=0, max_value=num_nodes - 1),
                     max_size=num_nodes))
        for __ in range(num_records)
    ]
    queriers = [
        draw(st.sets(st.integers(min_value=0, max_value=num_nodes - 1),
                     max_size=num_nodes))
        for __ in range(num_records)
    ]
    tft = draw(st.booleans())
    return (num_nodes, holders, piece_holders, queriers,
            meta_budget, piece_budget, tft)


@given(scenario=contact_scenarios())
@settings(max_examples=60, deadline=None)
def test_contact_processing_invariants(scenario):
    (num_nodes, holders, piece_holders, queriers,
     meta_budget, piece_budget, tft) = scenario
    from repro.catalog.metadata import PublisherRegistry

    registry = PublisherRegistry(master_seed=42)
    registry.register("fox")
    config = ProtocolConfig(
        budget=ContactBudget(meta_budget, piece_budget), tit_for_tat=tft
    )
    h = Harness(registry, num_nodes=num_nodes, config=config)

    records = []
    for i in range(len(holders)):
        record = make_metadata(
            registry, uri=f"dtn://fox/p{i}",
            name=f"news island s01e{i + 1:02d}", popularity=0.1 * (i + 1) % 1.0,
        )
        records.append(record)
        for node in holders[i]:
            h.states[NodeId(node)].accept_metadata(record, 0.0)
        for node in piece_holders[i]:
            h.give_piece(node, record, 0)
        for node in queriers[i]:
            h.states[NodeId(node)].add_own_query(
                make_query(node, record.uri, [f"s01e{i + 1:02d}"])
            )

    before_meta = {
        n: set(h.states[n].metadata.uris) for n in h.states
    }
    h.contact(list(range(num_nodes)))

    # Invariant 1: budgets bound transmissions.
    total_meta_sent = sum(s.stats.metadata_sent for s in h.states.values())
    total_piece_sent = sum(s.stats.pieces_sent for s in h.states.values())
    assert total_meta_sent <= meta_budget
    assert total_piece_sent <= piece_budget

    # Invariant 2: stores only grow, and only with catalog records.
    valid_uris = {r.uri for r in records}
    for n, state in h.states.items():
        assert before_meta[n] <= set(state.metadata.uris)
        assert set(state.metadata.uris) <= valid_uris

    # Invariant 3: every stored piece verifies against its metadata.
    for state in h.states.values():
        for uri in state.pieces.uris:
            record = state.metadata.get(uri)
            assert record is not None  # pieces never outlive metadata
            assert state.pieces.pieces_of(uri) <= set(range(record.num_pieces))

    # Invariant 4: credits are non-negative and only for real peers.
    for state in h.states.values():
        for peer, credit in state.credits.as_mapping().items():
            assert credit >= 0.0
            assert peer != state.node
