"""Unit tests for the contact-trace model."""

from __future__ import annotations

import pytest

from repro.traces.base import Contact, ContactTrace, TraceError, merge_traces
from repro.types import DAY, NodeId

from conftest import clique_contact, pair_contact, tiny_trace


class TestContact:
    def test_duration_and_size(self):
        contact = clique_contact(10.0, 40.0, [1, 2, 3])
        assert contact.duration == 30.0
        assert contact.size == 3

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(TraceError):
            pair_contact(10.0, 10.0, 0, 1)
        with pytest.raises(TraceError):
            pair_contact(10.0, 5.0, 0, 1)

    def test_rejects_singleton(self):
        with pytest.raises(TraceError):
            Contact(0.0, 1.0, frozenset({NodeId(1)}))

    def test_pairs_enumerates_all_unordered_pairs(self):
        contact = clique_contact(0.0, 1.0, [3, 1, 2])
        assert sorted(contact.pairs()) == [(1, 2), (1, 3), (2, 3)]

    def test_pairwise_contact_single_pair(self):
        contact = pair_contact(0.0, 1.0, 7, 4)
        assert list(contact.pairs()) == [(4, 7)]

    def test_involves(self):
        contact = pair_contact(0.0, 1.0, 0, 1)
        assert contact.involves(NodeId(0))
        assert not contact.involves(NodeId(2))

    def test_ordering_by_start_time(self):
        early = pair_contact(1.0, 2.0, 0, 1)
        late = pair_contact(3.0, 4.0, 0, 1)
        assert early < late


class TestContactTrace:
    def test_sorted_iteration(self):
        trace = ContactTrace(
            [pair_contact(5.0, 6.0, 0, 1), pair_contact(1.0, 2.0, 1, 2)]
        )
        starts = [c.start for c in trace]
        assert starts == [1.0, 5.0]

    def test_nodes_sorted_and_deduplicated(self):
        trace = tiny_trace()
        assert trace.nodes == (0, 1, 2)
        assert trace.num_nodes == 3

    def test_empty_trace(self):
        trace = ContactTrace([])
        assert len(trace) == 0
        assert trace.nodes == ()
        assert trace.duration == 0.0
        assert trace.stats().num_contacts == 0

    def test_indexing(self):
        trace = tiny_trace()
        assert trace[0].start == 100.0

    def test_contacts_between_half_open(self):
        trace = tiny_trace()
        selected = trace.contacts_between(100.0, 300.0)
        assert [c.start for c in selected] == [100.0]

    def test_contacts_of_node(self):
        trace = tiny_trace()
        contacts = trace.contacts_of(NodeId(2))
        assert all(NodeId(2) in c.members for c in contacts)
        assert len(contacts) == 3

    def test_pair_contact_counts_count_clique_pairs(self):
        trace = ContactTrace([clique_contact(0.0, 1.0, [0, 1, 2])])
        counts = trace.pair_contact_counts()
        assert counts == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    def test_pair_contact_times_sorted(self):
        trace = tiny_trace()
        times = trace.pair_contact_times()[(0, 1)]
        assert times == sorted(times)
        assert len(times) == 3

    def test_duration_is_last_contact_end(self):
        trace = tiny_trace()
        assert trace.duration == DAY + 900.0

    def test_restricted_to_drops_and_shrinks(self):
        trace = tiny_trace()
        restricted = trace.restricted_to([0, 1])
        assert all(c.members <= {0, 1} for c in restricted)
        # The 3-clique contact shrinks to {0, 1}.
        assert len(restricted) == 3

    def test_restricted_to_empty_population(self):
        assert len(tiny_trace().restricted_to([0])) == 0

    def test_truncated(self):
        trace = tiny_trace()
        truncated = trace.truncated(end_time=1000.0)
        assert all(c.start < 1000.0 for c in truncated)
        assert len(truncated) == 2


class TestFrequentContacts:
    def test_rate_based_detection(self):
        # Pair (0, 1) meets twice a day for two days.
        contacts = [
            pair_contact(t * DAY / 2 + 10.0, t * DAY / 2 + 20.0, 0, 1)
            for t in range(4)
        ]
        contacts.append(pair_contact(100.0, 110.0, 0, 2))
        trace = ContactTrace(contacts)
        frequent = trace.frequent_pairs_by_rate(min_contacts_per_day=1.0)
        assert (0, 1) in frequent
        assert (0, 2) not in frequent

    def test_rate_requires_positive_threshold(self):
        with pytest.raises(TraceError):
            tiny_trace().frequent_pairs_by_rate(0.0)

    def test_max_gap_detection_rejects_large_gaps(self):
        # Meetings on day 0 and day 3 only: max gap 3 days > 1 day.
        contacts = [
            pair_contact(100.0, 200.0, 0, 1),
            pair_contact(3 * DAY + 100.0, 3 * DAY + 200.0, 0, 1),
        ]
        trace = ContactTrace(contacts)
        assert (0, 1) not in trace.frequent_pairs(max_gap_days=1.0)
        assert (0, 1) in trace.frequent_pairs(max_gap_days=4.0)

    def test_frequent_neighbors_symmetric(self):
        trace = tiny_trace()
        neighbors = trace.frequent_neighbors(3.0)
        for node, peers in neighbors.items():
            for peer in peers:
                assert node in neighbors[peer]

    def test_frequent_neighbors_covers_all_nodes(self):
        neighbors = tiny_trace().frequent_neighbors(3.0)
        assert set(neighbors) == {0, 1, 2}


class TestStats:
    def test_stats_fields(self):
        trace = tiny_trace()
        stats = trace.stats()
        assert stats.num_nodes == 3
        assert stats.num_contacts == 5
        assert stats.pairwise_fraction == pytest.approx(4 / 5)
        assert stats.mean_clique_size == pytest.approx((2 * 4 + 3) / 5)
        assert stats.duration_days == pytest.approx((DAY + 900.0) / DAY)

    def test_describe_mentions_counts(self):
        text = tiny_trace().stats().describe()
        assert "3 nodes" in text
        assert "5 contacts" in text


class TestMerge:
    def test_merge_traces_sorts_globally(self):
        a = ContactTrace([pair_contact(10.0, 20.0, 0, 1)])
        b = ContactTrace([pair_contact(1.0, 2.0, 1, 2)])
        merged = merge_traces([a, b])
        assert [c.start for c in merged] == [1.0, 10.0]
        assert merged.nodes == (0, 1, 2)
