"""Unit tests for per-node protocol state."""

from __future__ import annotations

import pytest

from repro.catalog.files import piece_checksum, piece_payload
from repro.core.node import MetadataStore, NodeState
from repro.types import DAY, NodeId, Uri

from conftest import make_metadata, make_node, make_query


class TestMetadataStore:
    def test_unbounded_by_default(self, registry):
        store = MetadataStore()
        for i in range(50):
            store.add(make_metadata(registry, uri=f"dtn://fox/{i}"))
        assert len(store) == 50

    def test_add_reports_new_vs_duplicate(self, registry):
        store = MetadataStore()
        record = make_metadata(registry)
        assert store.add(record) is True
        assert store.add(record) is False

    def test_capacity_evicts_least_popular(self, registry):
        store = MetadataStore(capacity=2)
        low = make_metadata(registry, uri="dtn://fox/low", popularity=0.1)
        mid = make_metadata(registry, uri="dtn://fox/mid", popularity=0.5)
        high = make_metadata(registry, uri="dtn://fox/high", popularity=0.9)
        store.add(low)
        store.add(mid)
        store.add(high)
        assert len(store) == 2
        assert low.uri not in store
        assert mid.uri in store and high.uri in store

    def test_protected_records_survive_eviction(self, registry):
        store = MetadataStore(capacity=2)
        low = make_metadata(registry, uri="dtn://fox/low", popularity=0.1)
        mid = make_metadata(registry, uri="dtn://fox/mid", popularity=0.5)
        high = make_metadata(registry, uri="dtn://fox/high", popularity=0.9)
        store.add(low)
        store.add(mid)
        store.add(high, protected=frozenset({low.uri, high.uri}))
        assert low.uri in store  # protected despite lowest popularity
        assert mid.uri not in store

    def test_may_evict_on_insert(self, registry):
        store = MetadataStore(capacity=1)
        record = make_metadata(registry)
        assert store.may_evict_on_insert(record.uri) is False  # not full yet
        store.add(record)
        assert store.may_evict_on_insert(record.uri) is False  # refresh, not insert
        assert store.may_evict_on_insert(Uri("dtn://fox/other")) is True

    def test_drop_expired(self, registry):
        store = MetadataStore()
        record = make_metadata(registry, ttl=100.0)
        store.add(record)
        assert store.drop_expired(now=200.0) == [record.uri]
        assert len(store) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MetadataStore(capacity=0)


class TestNodeQueries:
    def test_add_own_query_checks_owner(self, registry):
        node = make_node(registry, node=1)
        with pytest.raises(ValueError):
            node.add_own_query(make_query(2, "dtn://fox/x", ["a"]))

    def test_own_queries_filters_expired(self, registry):
        node = make_node(registry)
        node.add_own_query(make_query(0, "dtn://fox/a", ["a"], 0.0, 100.0))
        node.add_own_query(make_query(0, "dtn://fox/b", ["b"], 0.0, 1000.0))
        assert len(node.own_queries(50.0)) == 2
        assert [q.target_uri for q in node.own_queries(500.0)] == ["dtn://fox/b"]

    def test_foreign_queries_deduplicated(self, registry):
        node = make_node(registry, node=0)
        query = make_query(1, "dtn://fox/x", ["a"])
        node.store_foreign_queries(NodeId(1), [query])
        node.store_foreign_queries(NodeId(1), [query])
        assert len(node.foreign_queries(0.0)) == 1

    def test_carried_queries_with_and_without_foreign(self, registry):
        node = make_node(registry, node=0)
        node.add_own_query(make_query(0, "dtn://fox/a", ["a"]))
        node.store_foreign_queries(NodeId(1), [make_query(1, "dtn://fox/b", ["b"])])
        assert len(node.carried_queries(0.0, include_foreign=True)) == 2
        assert len(node.carried_queries(0.0, include_foreign=False)) == 1

    def test_query_token_views(self, registry):
        node = make_node(registry, node=0)
        node.add_own_query(make_query(0, "dtn://fox/a", ["a", "x"]))
        node.store_foreign_queries(NodeId(1), [make_query(1, "dtn://fox/b", ["b"])])
        assert node.own_query_tokens(0.0) == (frozenset({"a", "x"}),)
        assert node.foreign_query_tokens(0.0) == (frozenset({"b"}),)

    def test_unmatched_own_queries(self, registry):
        node = make_node(registry)
        record = make_metadata(registry, name="news island s01e01")
        node.accept_metadata(record, now=0.0)
        node.add_own_query(make_query(0, record.uri, ["island"]))
        node.add_own_query(make_query(0, "dtn://fox/other", ["desert"]))
        unmatched = node.unmatched_own_queries(0.0)
        assert [q.tokens for q in unmatched] == [frozenset({"desert"})]


class TestNodeReceiving:
    def test_accept_metadata_verifies_signature(self, registry):
        node = make_node(registry)
        good = make_metadata(registry)
        bad = make_metadata(registry, uri="dtn://fox/bad", signed=False)
        assert node.accept_metadata(good, 0.0) is True
        assert node.accept_metadata(bad, 0.0) is False
        assert node.stats.metadata_rejected_auth == 1

    def test_accept_metadata_can_skip_verification(self, registry):
        node = make_node(registry)
        node.verify_signatures = False
        unsigned = make_metadata(registry, signed=False)
        assert node.accept_metadata(unsigned, 0.0) is True

    def test_accept_metadata_rejects_expired(self, registry):
        node = make_node(registry)
        record = make_metadata(registry, ttl=10.0)
        assert node.accept_metadata(record, now=20.0) is False

    def test_duplicate_metadata_counted(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        node.accept_metadata(record, 0.0)
        node.accept_metadata(record, 0.0)
        assert node.stats.metadata_received == 1
        assert node.stats.metadata_duplicates == 1

    def test_accept_piece_verifies(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        payload = piece_payload(record.uri, 0)
        assert node.accept_piece(record.uri, 0, payload, record.checksums[0]) is True
        assert node.accept_piece(record.uri, 0, payload, record.checksums[0]) is False
        assert node.stats.pieces_received == 1
        assert node.stats.piece_duplicates == 1


class TestWantedUris:
    def test_wants_incomplete_matching_file(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        node.accept_metadata(record, 0.0)
        node.add_own_query(make_query(0, record.uri, ["news"]))
        assert node.wanted_uris(0.0) == {record.uri}

    def test_complete_file_not_wanted(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        node.accept_metadata(record, 0.0)
        node.add_own_query(make_query(0, record.uri, ["news"]))
        node.receive_whole_file(record.uri, record.num_pieces)
        assert node.wanted_uris(0.0) == frozenset()

    def test_no_metadata_nothing_wanted(self, registry):
        node = make_node(registry)
        node.add_own_query(make_query(0, "dtn://fox/x", ["news"]))
        assert node.wanted_uris(0.0) == frozenset()

    def test_cache_invalidated_by_mutation(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        node.add_own_query(make_query(0, record.uri, ["news"]))
        assert node.wanted_uris(0.0) == frozenset()
        node.accept_metadata(record, 0.0)  # mutation must invalidate cache
        assert node.wanted_uris(0.0) == {record.uri}

    def test_expired_query_stops_wanting(self, registry):
        node = make_node(registry)
        record = make_metadata(registry, ttl=5 * DAY)
        node.accept_metadata(record, 0.0)
        node.add_own_query(make_query(0, record.uri, ["news"], 0.0, DAY))
        assert node.wanted_uris(0.5 * DAY) == {record.uri}
        assert node.wanted_uris(2 * DAY) == frozenset()


class TestPeerRequests:
    def test_remember_and_rank_by_demand(self, registry):
        node = make_node(registry)
        a, b = Uri("dtn://fox/a"), Uri("dtn://fox/b")
        node.remember_peer_requests(NodeId(1), [a], now=0.0)
        node.remember_peer_requests(NodeId(2), [a, b], now=1.0)
        top = node.top_peer_requests(now=2.0, window=100.0)
        assert top[0] == a  # two distinct requesters beat one

    def test_window_prunes_stale_requests(self, registry):
        node = make_node(registry)
        a = Uri("dtn://fox/a")
        node.remember_peer_requests(NodeId(1), [a], now=0.0)
        assert node.top_peer_requests(now=50.0, window=100.0) == [a]
        assert node.top_peer_requests(now=500.0, window=100.0) == []

    def test_same_peer_counted_once(self, registry):
        node = make_node(registry)
        a, b = Uri("dtn://fox/a"), Uri("dtn://fox/b")
        node.remember_peer_requests(NodeId(1), [a], now=0.0)
        node.remember_peer_requests(NodeId(1), [a], now=1.0)
        node.remember_peer_requests(NodeId(2), [b], now=2.0)
        node.remember_peer_requests(NodeId(3), [b], now=3.0)
        top = node.top_peer_requests(now=4.0, window=100.0)
        assert top[0] == b


class TestHousekeeping:
    def test_expire_drops_everything_stale(self, registry):
        node = make_node(registry)
        record = make_metadata(registry, ttl=100.0)
        node.accept_metadata(record, 0.0)
        node.receive_whole_file(record.uri, 1)
        node.add_own_query(make_query(0, record.uri, ["news"], 0.0, 100.0))
        node.store_foreign_queries(
            NodeId(1), [make_query(1, record.uri, ["news"], 0.0, 100.0)]
        )
        node.expire(now=200.0)
        assert len(node.metadata) == 0
        assert node.pieces.total_pieces() == 0
        assert node.own_queries(200.0) == []
        assert node.foreign_queries(200.0) == []

    def test_heard_recently(self, registry):
        node = make_node(registry)
        node.neighbor_last_heard[NodeId(1)] = 100.0
        node.neighbor_last_heard[NodeId(2)] = 10.0
        assert node.heard_recently(now=104.0, window=5.0) == {NodeId(1)}

    def test_repr_mentions_access(self, registry):
        assert "inet" in repr(make_node(registry, internet_access=True))
        assert "dtn" in repr(make_node(registry, internet_access=False))

    def test_stats_as_dict(self, registry):
        node = make_node(registry)
        record = make_metadata(registry)
        node.accept_metadata(record, 0.0)
        stats = node.stats.as_dict()
        assert stats["metadata_received"] == 1
