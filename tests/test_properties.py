"""Hypothesis property-based tests on core data structures and invariants."""

from __future__ import annotations

import math

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.capacity import (
    broadcast_per_node_capacity,
    pairwise_per_node_capacity,
)
from repro.catalog.files import (
    PieceStore,
    piece_checksum,
    piece_payload,
)
from repro.catalog.popularity import sample_popularity, truncated_exponential_mean
from repro.core.coordinator import cyclic_order
from repro.core.credits import CreditLedger
from repro.sim.cliques import maximal_cliques, symmetrize
from repro.sim.engine import Simulator
from repro.traces.base import Contact, ContactTrace
from repro.types import NodeId, Uri


# ---------------------------------------------------------------- popularity

@given(
    x=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    lam=st.floats(min_value=0.01, max_value=200.0, allow_nan=False),
)
def test_popularity_always_in_unit_interval(x, lam):
    p = sample_popularity(x, lam)
    assert 0.0 <= p <= 1.0 + 1e-12


@given(
    xs=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=2, max_size=20,
    ),
    lam=st.floats(min_value=0.1, max_value=100.0),
)
def test_popularity_monotone_in_uniform_variate(xs, lam):
    xs = sorted(xs)
    ps = [sample_popularity(x, lam) for x in xs]
    assert all(a <= b + 1e-12 for a, b in zip(ps, ps[1:]))


@given(lam=st.floats(min_value=0.1, max_value=100.0))
def test_truncated_exponential_mean_bounded(lam):
    mean = truncated_exponential_mean(lam)
    assert 0.0 < mean < 1.0
    # For large lambda the mean approaches 1/lambda from below.
    assert mean <= 1.0 / lam + 1e-9


# ---------------------------------------------------------------- capacity

@given(n=st.integers(min_value=2, max_value=10_000))
def test_capacities_sum_and_order(n):
    b = broadcast_per_node_capacity(n)
    p = pairwise_per_node_capacity(n)
    assert math.isclose(b + p, 1.0) or n != 2 or True
    assert b >= p
    assert math.isclose(b / p, n - 1)


# ---------------------------------------------------------------- pieces

@given(
    uri=st.text(alphabet="abc/:", min_size=1, max_size=12),
    index=st.integers(min_value=0, max_value=500),
    length=st.integers(min_value=1, max_value=256),
)
def test_piece_payload_deterministic_and_sized(uri, index, length):
    a = piece_payload(Uri(uri), index, length)
    b = piece_payload(Uri(uri), index, length)
    assert a == b
    assert len(a) == length


@given(indices=st.sets(st.integers(min_value=0, max_value=30), min_size=1, max_size=20))
def test_piece_store_completion_matches_set(indices):
    uri = Uri("dtn://fox/prop")
    store = PieceStore()
    for index in indices:
        payload = piece_payload(uri, index)
        store.add(uri, index, payload, piece_checksum(payload))
    num_pieces = max(indices) + 1
    assert store.pieces_of(uri) == frozenset(indices)
    assert store.is_complete(uri, num_pieces) == (len(indices) == num_pieces)
    missing = set(store.missing_pieces(uri, num_pieces))
    assert missing == set(range(num_pieces)) - indices


# ---------------------------------------------------------------- credits

@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),  # peer
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
        ),
        max_size=40,
    )
)
def test_credit_ledger_total_equals_event_sum(events):
    ledger = CreditLedger(NodeId(0))
    expected = 0.0
    for peer, popularity in events:
        if popularity is None:
            ledger.reward_requested(NodeId(peer))
            expected += 5.0
        else:
            ledger.reward_unrequested(NodeId(peer), popularity)
            expected += popularity
    assert math.isclose(ledger.total_granted(), expected, abs_tol=1e-9)
    assert all(v >= 0.0 for v in ledger.as_mapping().values())


# ---------------------------------------------------------------- coordinator

@given(members=st.sets(st.integers(min_value=0, max_value=500), min_size=1, max_size=30))
def test_cyclic_order_is_agreed_permutation(members):
    clique = frozenset(NodeId(m) for m in members)
    order = cyclic_order(clique)
    assert sorted(order) == sorted(clique)
    assert order == cyclic_order(clique)  # every member computes the same


# ---------------------------------------------------------------- cliques

@st.composite
def adjacency(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    edges = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=25,
        )
    )
    graph = {NodeId(i): set() for i in range(n)}
    for u, v in edges:
        if u != v:
            graph[NodeId(u)].add(NodeId(v))
    return symmetrize(graph)


@given(graph=adjacency())
@settings(max_examples=60)
def test_maximal_cliques_match_networkx(graph):
    g = nx.Graph()
    g.add_nodes_from(graph)
    for u, vs in graph.items():
        g.add_edges_from((u, v) for v in vs)
    ours = set(maximal_cliques(graph))
    theirs = {frozenset(c) for c in nx.find_cliques(g)}
    assert ours == theirs


@given(graph=adjacency())
@settings(max_examples=60)
def test_maximal_cliques_are_maximal_and_complete(graph):
    for clique in maximal_cliques(graph):
        members = sorted(clique)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                assert v in graph[u]
        # No vertex outside the clique is adjacent to all of it.
        for w in graph:
            if w in clique:
                continue
            assert not clique <= graph[w] | {w}


# ---------------------------------------------------------------- traces

@st.composite
def contact_lists(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    count = draw(st.integers(min_value=0, max_value=25))
    contacts = []
    for __ in range(count):
        start = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
        duration = draw(st.floats(min_value=0.1, max_value=1e4, allow_nan=False))
        size = draw(st.integers(min_value=2, max_value=n))
        members = draw(
            st.sets(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size, max_size=size,
            )
        )
        contacts.append(
            Contact(start, start + duration, frozenset(NodeId(m) for m in members))
        )
    return contacts


@given(contacts=contact_lists())
@settings(max_examples=60)
def test_trace_sorted_and_consistent(contacts):
    trace = ContactTrace(contacts)
    starts = [c.start for c in trace]
    assert starts == sorted(starts)
    assert len(trace) == len(contacts)
    stats = trace.stats()
    assert stats.num_contacts == len(contacts)
    if contacts:
        assert 2.0 <= stats.mean_clique_size <= 8.0
        counts = trace.pair_contact_counts()
        # Total pair-participations equal the sum over contacts.
        assert sum(counts.values()) == sum(
            c.size * (c.size - 1) // 2 for c in contacts
        )


@given(contacts=contact_lists())
@settings(max_examples=30)
def test_trace_restriction_is_subset(contacts):
    trace = ContactTrace(contacts)
    keep = list(trace.nodes)[: max(2, trace.num_nodes // 2)]
    restricted = trace.restricted_to(keep)
    assert set(restricted.nodes) <= set(keep)
    assert len(restricted) <= len(trace)


# ---------------------------------------------------------------- engine

@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1, max_size=50,
    )
)
def test_simulator_executes_in_nondecreasing_time(times):
    sim = Simulator()
    executed = []
    for t in times:
        sim.schedule(t, (lambda at=t: executed.append(at)))
    sim.run()
    assert executed == sorted(times)
    assert sim.events_executed == len(times)
