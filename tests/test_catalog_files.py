"""Unit tests for files, pieces, payloads and the piece store."""

from __future__ import annotations

import pytest

from repro.catalog.files import (
    PIECE_SIZE,
    FileDescriptor,
    IntegrityError,
    PieceStore,
    num_pieces_for_size,
    piece_checksum,
    piece_checksums,
    piece_payload,
)
from repro.types import DAY, Uri

URI = Uri("dtn://fox/f000042")


def make_descriptor(num_pieces: int = 2, popularity: float = 0.4) -> FileDescriptor:
    return FileDescriptor(
        uri=URI,
        title_tokens=("news", "island", "s01e01"),
        publisher="fox",
        size_bytes=num_pieces * PIECE_SIZE,
        popularity=popularity,
        created_at=0.0,
        ttl=2 * DAY,
    )


class TestPieceMath:
    def test_piece_size_is_256kb(self):
        assert PIECE_SIZE == 256 * 1024

    def test_num_pieces_exact_multiple(self):
        assert num_pieces_for_size(3 * PIECE_SIZE) == 3

    def test_num_pieces_rounds_up(self):
        assert num_pieces_for_size(PIECE_SIZE + 1) == 2
        assert num_pieces_for_size(1) == 1

    def test_num_pieces_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            num_pieces_for_size(0)


class TestPayloads:
    def test_payload_deterministic(self):
        assert piece_payload(URI, 0) == piece_payload(URI, 0)

    def test_payload_varies_by_index(self):
        assert piece_payload(URI, 0) != piece_payload(URI, 1)

    def test_payload_varies_by_uri(self):
        other = Uri("dtn://abc/f000001")
        assert piece_payload(URI, 0) != piece_payload(other, 0)

    def test_payload_length_honored(self):
        assert len(piece_payload(URI, 0, length=100)) == 100
        assert len(piece_payload(URI, 0, length=7)) == 7

    def test_payload_rejects_negative_index(self):
        with pytest.raises(ValueError):
            piece_payload(URI, -1)

    def test_checksum_is_sha1_hex(self):
        digest = piece_checksum(b"hello")
        assert len(digest) == 40
        int(digest, 16)  # hex-parsable

    def test_checksums_match_payloads(self):
        sums = piece_checksums(URI, 3)
        for index, expected in enumerate(sums):
            assert piece_checksum(piece_payload(URI, index)) == expected


class TestFileDescriptor:
    def test_num_pieces_from_size(self):
        assert make_descriptor(num_pieces=5).num_pieces == 5

    def test_expiry(self):
        descriptor = make_descriptor()
        assert descriptor.expires_at == 2 * DAY
        assert descriptor.is_live(0.0)
        assert descriptor.is_live(2 * DAY - 1)
        assert not descriptor.is_live(2 * DAY)

    def test_not_live_before_creation(self):
        descriptor = FileDescriptor(
            uri=URI,
            title_tokens=("a",),
            publisher="fox",
            size_bytes=PIECE_SIZE,
            popularity=0.1,
            created_at=100.0,
            ttl=DAY,
        )
        assert not descriptor.is_live(50.0)

    def test_token_set(self):
        assert make_descriptor().token_set == {"news", "island", "s01e01"}

    def test_validation(self):
        with pytest.raises(ValueError):
            make_descriptor(popularity=1.5)
        with pytest.raises(ValueError):
            FileDescriptor(URI, ("a",), "fox", 0, 0.5, 0.0, DAY)
        with pytest.raises(ValueError):
            FileDescriptor(URI, ("a",), "fox", PIECE_SIZE, 0.5, 0.0, 0.0)


class TestPieceStore:
    def test_add_verified_piece(self):
        store = PieceStore()
        payload = piece_payload(URI, 0)
        assert store.add(URI, 0, payload, piece_checksum(payload)) is True
        assert store.pieces_of(URI) == {0}
        assert URI in store

    def test_duplicate_add_returns_false(self):
        store = PieceStore()
        payload = piece_payload(URI, 0)
        checksum = piece_checksum(payload)
        store.add(URI, 0, payload, checksum)
        assert store.add(URI, 0, payload, checksum) is False

    def test_corrupt_piece_rejected(self):
        store = PieceStore()
        payload = piece_payload(URI, 0)
        with pytest.raises(IntegrityError):
            store.add(URI, 0, payload + b"x", piece_checksum(payload))
        assert URI not in store

    def test_wrong_checksum_rejected(self):
        store = PieceStore()
        payload = piece_payload(URI, 0)
        with pytest.raises(IntegrityError):
            store.add(URI, 0, payload, piece_checksum(b"other"))

    def test_completion(self):
        store = PieceStore()
        for index in range(3):
            payload = piece_payload(URI, index)
            store.add(URI, index, payload, piece_checksum(payload))
            expected = index == 2
            assert store.is_complete(URI, 3) is expected

    def test_missing_pieces(self):
        store = PieceStore()
        payload = piece_payload(URI, 1)
        store.add(URI, 1, payload, piece_checksum(payload))
        assert list(store.missing_pieces(URI, 3)) == [0, 2]

    def test_add_whole_file(self):
        store = PieceStore()
        store.add_whole_file(URI, 4)
        assert store.is_complete(URI, 4)
        assert store.pieces_of(URI) == {0, 1, 2, 3}

    def test_drop(self):
        store = PieceStore()
        store.add_whole_file(URI, 2)
        store.drop(URI)
        assert URI not in store
        assert store.pieces_of(URI) == frozenset()

    def test_drop_expired_keeps_live(self):
        store = PieceStore()
        other = Uri("dtn://abc/f000002")
        store.add_whole_file(URI, 1)
        store.add_whole_file(other, 1)
        dropped = store.drop_expired(live_uris=frozenset({URI}))
        assert dropped == [other]
        assert URI in store

    def test_total_pieces(self):
        store = PieceStore()
        store.add_whole_file(URI, 3)
        store.add_unverified(Uri("dtn://abc/x"), 0)
        assert store.total_pieces() == 4

    def test_empty_store_queries(self):
        store = PieceStore()
        assert store.pieces_of(URI) == frozenset()
        assert not store.is_complete(URI, 1)
        assert store.uris == frozenset()
