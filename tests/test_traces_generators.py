"""Unit tests for the synthetic DieselNet and NUS trace generators."""

from __future__ import annotations

import pytest

from repro.traces.base import ContactTrace
from repro.traces.dieselnet import (
    DieselNetConfig,
    generate_dieselnet_trace,
    route_of_buses,
)
from repro.traces.nus import NUSConfig, build_schedules, classmates, generate_nus_trace
from repro.types import DAY, HOUR

import random


SMALL_DIESEL = DieselNetConfig(num_buses=12, num_days=5)
SMALL_NUS = NUSConfig(num_students=30, num_courses=6, num_days=7)


class TestDieselNetConfig:
    def test_rejects_too_few_buses(self):
        with pytest.raises(ValueError):
            DieselNetConfig(num_buses=1)

    def test_rejects_zero_days(self):
        with pytest.raises(ValueError):
            DieselNetConfig(num_days=0)

    def test_rejects_bad_hub_fraction(self):
        with pytest.raises(ValueError):
            DieselNetConfig(hub_fraction=1.5)

    def test_rejects_empty_service_window(self):
        with pytest.raises(ValueError):
            DieselNetConfig(service_start_hour=10.0, service_end_hour=10.0)

    def test_service_window_seconds(self):
        config = DieselNetConfig(service_start_hour=6.0, service_end_hour=22.0)
        assert config.service_window == 16 * HOUR


class TestDieselNetTrace:
    def test_deterministic_for_seed(self):
        a = generate_dieselnet_trace(SMALL_DIESEL, seed=7)
        b = generate_dieselnet_trace(SMALL_DIESEL, seed=7)
        assert len(a) == len(b)
        assert [(c.start, c.end, c.members) for c in a] == [
            (c.start, c.end, c.members) for c in b
        ]

    def test_different_seeds_differ(self):
        a = generate_dieselnet_trace(SMALL_DIESEL, seed=1)
        b = generate_dieselnet_trace(SMALL_DIESEL, seed=2)
        assert [(c.start, c.members) for c in a] != [(c.start, c.members) for c in b]

    def test_all_contacts_pairwise(self):
        trace = generate_dieselnet_trace(SMALL_DIESEL, seed=3)
        assert all(contact.size == 2 for contact in trace)
        assert trace.stats().pairwise_fraction == 1.0

    def test_contacts_within_service_window(self):
        trace = generate_dieselnet_trace(SMALL_DIESEL, seed=3)
        for contact in trace:
            day_offset = contact.start % DAY
            assert day_offset >= SMALL_DIESEL.service_start_hour * HOUR
            assert day_offset <= SMALL_DIESEL.service_end_hour * HOUR

    def test_contact_durations_clamped(self):
        trace = generate_dieselnet_trace(SMALL_DIESEL, seed=3)
        for contact in trace:
            assert SMALL_DIESEL.min_contact_duration <= contact.duration
            assert contact.duration <= SMALL_DIESEL.max_contact_duration

    def test_population_bounded_by_config(self):
        trace = generate_dieselnet_trace(SMALL_DIESEL, seed=3)
        assert set(trace.nodes) <= set(range(SMALL_DIESEL.num_buses))

    def test_same_route_pairs_meet_more(self):
        config = DieselNetConfig(num_buses=20, num_routes=4, num_days=10)
        seed = 5
        trace = generate_dieselnet_trace(config, seed=seed)
        routes = route_of_buses(config, seed=seed)
        counts = trace.pair_contact_counts()
        same: list = []
        other: list = []
        for u in range(config.num_buses):
            for v in range(u + 1, config.num_buses):
                bucket = same if routes[u] == routes[v] else other
                bucket.append(counts.get((u, v), 0))
        assert sum(same) / len(same) > sum(other) / len(other)

    def test_route_assignment_deterministic(self):
        assert route_of_buses(SMALL_DIESEL, seed=9) == route_of_buses(SMALL_DIESEL, seed=9)

    def test_frequent_pairs_exist_at_paper_threshold(self):
        trace = generate_dieselnet_trace(DieselNetConfig(num_buses=20, num_days=10), seed=1)
        frequent = trace.frequent_pairs_by_rate(1.0 / 3.0)
        assert frequent  # some pairs meet at least every three days


class TestNUSConfig:
    def test_rejects_more_courses_than_exist(self):
        with pytest.raises(ValueError):
            NUSConfig(num_courses=3, courses_per_student=4)

    def test_rejects_bad_attendance(self):
        with pytest.raises(ValueError):
            NUSConfig(attendance_rate=-0.1)
        with pytest.raises(ValueError):
            NUSConfig(attendance_rate=1.1)

    def test_rejects_empty_teaching_window(self):
        with pytest.raises(ValueError):
            NUSConfig(first_slot_hour=10, last_slot_hour=10)


class TestNUSSchedules:
    def test_every_student_enrolls_exact_count(self):
        rng = random.Random(0)
        schedules = build_schedules(SMALL_NUS, rng)
        enrollment = {s: 0 for s in range(SMALL_NUS.num_students)}
        for course in schedules:
            for student in course.roster:
                enrollment[student] += 1
        assert all(n == SMALL_NUS.courses_per_student for n in enrollment.values())

    def test_courses_have_requested_slots(self):
        rng = random.Random(0)
        schedules = build_schedules(SMALL_NUS, rng)
        for course in schedules:
            assert len(course.slots) == SMALL_NUS.sessions_per_course_per_week
            for weekday, hour in course.slots:
                assert 0 <= weekday < SMALL_NUS.teaching_days_per_week
                assert SMALL_NUS.first_slot_hour <= hour < SMALL_NUS.last_slot_hour

    def test_classmates_symmetric(self):
        rng = random.Random(0)
        schedules = build_schedules(SMALL_NUS, rng)
        mates = classmates(schedules)
        for student, peers in mates.items():
            for peer in peers:
                assert student in mates[peer]


class TestNUSTrace:
    def test_deterministic_for_seed(self):
        a = generate_nus_trace(SMALL_NUS, seed=4)
        b = generate_nus_trace(SMALL_NUS, seed=4)
        assert [(c.start, c.members) for c in a] == [(c.start, c.members) for c in b]

    def test_contacts_are_class_sessions(self):
        trace = generate_nus_trace(SMALL_NUS, seed=4)
        for contact in trace:
            assert contact.duration == SMALL_NUS.session_duration
            hour = (contact.start % DAY) / HOUR
            assert SMALL_NUS.first_slot_hour <= hour < SMALL_NUS.last_slot_hour

    def test_no_weekend_contacts(self):
        trace = generate_nus_trace(SMALL_NUS, seed=4)
        for contact in trace:
            weekday = int(contact.start // DAY) % 7
            assert weekday < SMALL_NUS.teaching_days_per_week

    def test_cliques_larger_than_pairs_exist(self):
        trace = generate_nus_trace(SMALL_NUS, seed=4)
        assert any(contact.size > 2 for contact in trace)

    def test_zero_attendance_produces_empty_trace(self):
        config = NUSConfig(
            num_students=20, num_courses=5, num_days=5, attendance_rate=0.0
        )
        assert len(generate_nus_trace(config, seed=0)) == 0

    def test_full_attendance_contacts_match_rosters(self):
        config = NUSConfig(
            num_students=20, num_courses=5, num_days=5, attendance_rate=1.0
        )
        trace = generate_nus_trace(config, seed=0)
        rng = random.Random(0)
        schedules = build_schedules(config, rng)
        rosters = {frozenset(c.roster) for c in schedules if len(c.roster) >= 2}
        for contact in trace:
            assert contact.members in rosters

    def test_higher_attendance_more_participation(self):
        low = generate_nus_trace(
            NUSConfig(num_students=40, num_courses=8, num_days=5, attendance_rate=0.3),
            seed=2,
        )
        high = generate_nus_trace(
            NUSConfig(num_students=40, num_courses=8, num_days=5, attendance_rate=0.9),
            seed=2,
        )
        size = lambda trace: sum(c.size for c in trace)
        assert size(high) > size(low)
